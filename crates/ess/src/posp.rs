//! POSP compilation: the Parametric Optimal Set of Plans over the ESS grid.
//!
//! The optimizer is invoked at every grid location ("repeated invocations of
//! the optimizer with different selectivity values", §2.2); the resulting
//! optimal plans are deduplicated into a [`PlanRegistry`] and each cell
//! stores its optimal plan id and cost. Compilation is embarrassingly
//! parallel (§7 notes contour construction parallelizes trivially), so the
//! grid is mapped with rayon.

use crate::grid::{Cell, Grid};
use crate::registry::{PlanId, PlanRegistry};
use parking_lot::Mutex;
use rayon::prelude::*;
use rqp_obs::{JsonValue, Stopwatch};
use rqp_optimizer::Optimizer;
use rqp_qplan::{Fingerprint, PlanNode};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Accumulates one compile phase's total work across parallel workers:
/// per-cell [`Stopwatch`] readings land in an atomic nanosecond counter,
/// reported afterwards as one synthetic aggregate span. Summed worker time
/// can exceed the enclosing span's wall time — it is attribution ("where
/// did the optimizer calls go"), not a timeline.
struct PhaseClock {
    enabled: bool,
    nanos: AtomicU64,
    cells: AtomicU64,
}

impl PhaseClock {
    fn new(enabled: bool) -> PhaseClock {
        PhaseClock { enabled, nanos: AtomicU64::new(0), cells: AtomicU64::new(0) }
    }

    /// Start timing one cell's work (no-op when tracing is disabled).
    fn cell(&self) -> Option<Stopwatch> {
        self.enabled.then(Stopwatch::start)
    }

    fn add(&self, sw: Option<Stopwatch>) {
        if let Some(sw) = sw {
            self.nanos.fetch_add(sw.elapsed_nanos(), Ordering::Relaxed);
            self.cells.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Emit the aggregate as a synthetic span under the current parent.
    fn report(&self, tracer: &rqp_obs::Tracer, name: &'static str) {
        if !self.enabled {
            return;
        }
        let cells = self.cells.load(Ordering::Relaxed);
        tracer.record_span(
            name,
            rqp_obs::SpanKind::CompilePhase,
            self.nanos.load(Ordering::Relaxed) as f64 * 1e-9,
            vec![("cells", JsonValue::from(cells))],
        );
    }
}

/// Strategy for computing the optimal-plan surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompileMode {
    /// Full Selinger DP at every grid cell — the paper's brute-force
    /// enumeration ("repeated invocations of the optimizer", §2.2).
    Exact,
    /// DP only on a seed sublattice (every `seed_stride`-th coordinate per
    /// dimension, plus the axis ends). Each remaining cell looks at the
    /// corners of its surrounding seed box: when all corners agree on the
    /// optimal plan, that plan is recosted at the cell via
    /// `Optimizer::cost_of` (no DP); when they disagree, the cell falls
    /// back to full DP.
    Recost {
        /// Coordinate stride between seed cells; values ≤ 1 degrade to
        /// [`CompileMode::Exact`].
        seed_stride: usize,
    },
}

impl Default for CompileMode {
    fn default() -> Self {
        CompileMode::Recost { seed_stride: 3 }
    }
}

/// The compiled optimal-plan surface: for every grid cell, the optimal plan
/// and its cost (a discretized Optimal Cost Surface, §2.5).
#[derive(Debug, Clone)]
pub struct Posp {
    grid: Grid,
    registry: PlanRegistry,
    cell_plan: Vec<PlanId>,
    cell_cost: Vec<f64>,
}

/// Record a plan under its fingerprint, counting rediscoveries.
fn record_plan(distinct: &Mutex<HashMap<Fingerprint, PlanNode>>, fp: Fingerprint, plan: PlanNode) {
    use std::collections::hash_map::Entry as MapEntry;
    let mut map = distinct.lock();
    match map.entry(fp) {
        // another cell already compiled this exact plan
        MapEntry::Occupied(_) => crate::obs::metrics().memo_hits.inc(),
        MapEntry::Vacant(slot) => {
            slot.insert(plan);
        }
    }
}

/// Full DP at every cell: `(fingerprint, cost)` per cell plus the distinct
/// plan set.
fn exact_surface(
    optimizer: &Optimizer<'_>,
    grid: &Grid,
) -> (Vec<(Fingerprint, f64)>, HashMap<Fingerprint, PlanNode>) {
    let tracer = rqp_obs::current();
    let dp = PhaseClock::new(tracer.is_enabled());
    let distinct: Mutex<HashMap<Fingerprint, PlanNode>> = Mutex::new(HashMap::new());
    let per_cell: Vec<(Fingerprint, f64)> = grid
        .cells()
        .into_par_iter()
        .map(|cell| {
            let sw = dp.cell();
            let planned = optimizer.optimize(&grid.location(cell));
            let fp = Fingerprint::of(&planned.plan);
            record_plan(&distinct, fp, planned.plan);
            dp.add(sw);
            (fp, planned.cost)
        })
        .collect();
    dp.report(&tracer, rqp_obs::names::SPAN_POSP_EXACT_DP);
    (per_cell, distinct.into_inner())
}

/// Per-dimension seed coordinates for the recost sublattice: every
/// `stride`-th point plus the axis end. Shared between the eager
/// [`recost_surface`] pass and the lazy band-by-band compiler so both walk
/// the *same* lattice (a prerequisite for bitwise-equal surfaces).
///
/// Callers must uphold `stride > 1` (the [`Posp::compile_with`] guard);
/// `step_by(0)` would panic.
pub(crate) fn seed_marks(grid: &Grid, stride: usize) -> Vec<Vec<bool>> {
    debug_assert!(stride > 1, "recost seed lattice requires stride > 1");
    (0..grid.dims())
        .map(|d| {
            let r = grid.res(d);
            let mut marks = vec![false; r];
            for c in (0..r).step_by(stride) {
                marks[c] = true;
            }
            marks[r - 1] = true;
            marks
        })
        .collect()
}

/// The corners of the seed box surrounding `cell`: per dimension the
/// nearest seed coordinate at-or-below (`lo`) and at-or-above (`hi`).
pub(crate) fn seed_box(
    grid: &Grid,
    is_seed: &[Vec<bool>],
    stride: usize,
    cell: Cell,
    lo: &mut [usize],
    hi: &mut [usize],
) {
    for d in 0..grid.dims() {
        let c = grid.coord(cell, d);
        lo[d] = (c / stride) * stride;
        hi[d] = if is_seed[d][c] { c } else { (lo[d] + stride).min(grid.res(d) - 1) };
    }
}

/// Whether `cell` lies on the seed sublattice.
pub(crate) fn is_seed_cell(grid: &Grid, is_seed: &[Vec<bool>], cell: Cell) -> bool {
    (0..grid.dims()).all(|d| is_seed[d][grid.coord(cell, d)])
}

/// Recosting-first surface: DP on the seed sublattice, recost fill between
/// agreeing seed corners, DP fallback where corners disagree.
fn recost_surface(
    optimizer: &Optimizer<'_>,
    grid: &Grid,
    stride: usize,
) -> (Vec<(Fingerprint, f64)>, HashMap<Fingerprint, PlanNode>) {
    let m = crate::obs::metrics();
    let dims = grid.dims();

    let is_seed = seed_marks(grid, stride);
    let seed_cells: Vec<Cell> = grid.cells().filter(|&c| is_seed_cell(grid, &is_seed, c)).collect();

    let tracer = rqp_obs::current();
    let seed_dp = PhaseClock::new(tracer.is_enabled());
    let recost = PhaseClock::new(tracer.is_enabled());
    let fallback_dp = PhaseClock::new(tracer.is_enabled());
    let distinct: Mutex<HashMap<Fingerprint, PlanNode>> = Mutex::new(HashMap::new());
    let seed_results: Vec<(Cell, Fingerprint, f64)> = seed_cells
        .par_iter()
        .map(|&cell| {
            let sw = seed_dp.cell();
            let planned = optimizer.optimize(&grid.location(cell));
            let fp = Fingerprint::of(&planned.plan);
            record_plan(&distinct, fp, planned.plan);
            seed_dp.add(sw);
            (cell, fp, planned.cost)
        })
        .collect();
    m.seed_cells.add(seed_cells.len() as u64);
    seed_dp.report(&tracer, rqp_obs::names::SPAN_POSP_SEED_DP);

    let mut slot: Vec<Option<(Fingerprint, f64)>> = vec![None; grid.num_cells()];
    for &(cell, fp, cost) in &seed_results {
        slot[cell] = Some((fp, cost));
    }
    // the fill pass only ever *reads* seed plans; fallback DP discoveries
    // go into `distinct` as usual
    let seed_plans: HashMap<Fingerprint, PlanNode> = distinct.lock().clone();

    let filled: Vec<(Cell, Fingerprint, f64)> = grid
        .cells()
        .into_par_iter()
        .filter(|&c| slot[c].is_none())
        .map(|cell| {
            let mut lo = vec![0usize; dims];
            let mut hi = vec![0usize; dims];
            seed_box(grid, &is_seed, stride, cell, &mut lo, &mut hi);
            let mut coords = vec![0usize; dims];
            let mut agreed: Option<Fingerprint> = None;
            let mut agree = true;
            'corners: for mask in 0u32..(1u32 << dims) {
                for d in 0..dims {
                    coords[d] = if mask & (1 << d) != 0 { hi[d] } else { lo[d] };
                }
                match (slot[grid.index(&coords)], agreed) {
                    (Some((fp, _)), None) => agreed = Some(fp),
                    (Some((fp, _)), Some(first)) if fp == first => {}
                    _ => {
                        agree = false;
                        break 'corners;
                    }
                }
            }
            if agree {
                if let Some(fp) = agreed {
                    if let Some(plan) = seed_plans.get(&fp) {
                        m.recost_cells.inc();
                        let sw = recost.cell();
                        let cost = optimizer.cost_of(plan, &grid.location(cell));
                        recost.add(sw);
                        return (cell, fp, cost);
                    }
                }
            }
            m.recost_fallback_cells.inc();
            let sw = fallback_dp.cell();
            let planned = optimizer.optimize(&grid.location(cell));
            let fp = Fingerprint::of(&planned.plan);
            record_plan(&distinct, fp, planned.plan);
            fallback_dp.add(sw);
            (cell, fp, planned.cost)
        })
        .collect();
    recost.report(&tracer, rqp_obs::names::SPAN_POSP_RECOST);
    fallback_dp.report(&tracer, rqp_obs::names::SPAN_POSP_FALLBACK_DP);
    for (cell, fp, cost) in filled {
        slot[cell] = Some((fp, cost));
    }
    // belt-and-braces: any cell both passes somehow missed gets its own DP
    for cell in grid.cells() {
        if slot[cell].is_none() {
            debug_assert!(false, "cell {cell} left unfilled by recost passes");
            let planned = optimizer.optimize(&grid.location(cell));
            let fp = Fingerprint::of(&planned.plan);
            record_plan(&distinct, fp, planned.plan);
            slot[cell] = Some((fp, planned.cost));
        }
    }
    (slot.into_iter().flatten().collect(), distinct.into_inner())
}

impl Posp {
    /// Compile the POSP by optimizing at every grid location in parallel
    /// (brute-force [`CompileMode::Exact`]).
    pub fn compile(optimizer: &Optimizer<'_>, grid: Grid) -> Posp {
        Posp::compile_with(optimizer, grid, CompileMode::Exact)
    }

    /// Compile the POSP with an explicit surface strategy.
    pub fn compile_with(optimizer: &Optimizer<'_>, grid: Grid, mode: CompileMode) -> Posp {
        let m = crate::obs::metrics();
        let _span = rqp_obs::time_histogram(&m.posp_compile_seconds);
        m.posp_cells.add(grid.num_cells() as u64);

        let (per_cell, plans) = match mode {
            // the corner-agreement test enumerates 2^dims seed-box corners;
            // past 8 dims the sublattice stops being a win, degrade to exact
            CompileMode::Recost { seed_stride } if seed_stride > 1 && grid.dims() <= 8 => {
                recost_surface(optimizer, &grid, seed_stride)
            }
            _ => exact_surface(optimizer, &grid),
        };
        Posp::assemble(grid, per_cell, plans)
    }

    /// Assign deterministic plan ids (first-seen order by cell index) and
    /// assemble the surface. Also the finishing step of the lazy compiler:
    /// feeding it the per-cell `(fingerprint, cost)` pairs in cell-index
    /// order reproduces the eager id assignment exactly, regardless of the
    /// order in which the lazy frontier discovered the plans.
    pub(crate) fn assemble(
        grid: Grid,
        per_cell: Vec<(Fingerprint, f64)>,
        mut plans: HashMap<Fingerprint, PlanNode>,
    ) -> Posp {
        let mut registry = PlanRegistry::new();
        let mut cell_plan = Vec::with_capacity(per_cell.len());
        let mut cell_cost = Vec::with_capacity(per_cell.len());
        let mut fp_to_id: HashMap<Fingerprint, PlanId> = HashMap::new();
        for (fp, cost) in per_cell {
            let id = if let Some(&id) = fp_to_id.get(&fp) {
                id
            } else {
                let id = match plans.remove(&fp) {
                    Some(plan) => registry.insert(plan),
                    None => {
                        // unreachable: the parallel pass recorded a plan for
                        // every fingerprint; degrade to the first plan id
                        debug_assert!(false, "plan recorded for fingerprint");
                        PlanId(0)
                    }
                };
                fp_to_id.insert(fp, id);
                id
            };
            cell_plan.push(id);
            cell_cost.push(cost);
        }
        Posp { grid, registry, cell_plan, cell_cost }
    }

    /// Reassemble a POSP from snapshot parts (see `crate::snapshot`).
    pub(crate) fn from_parts(
        grid: Grid,
        registry: PlanRegistry,
        cell_plan: Vec<PlanId>,
        cell_cost: Vec<f64>,
    ) -> Posp {
        Posp { grid, registry, cell_plan, cell_cost }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The plan registry.
    pub fn registry(&self) -> &PlanRegistry {
        &self.registry
    }

    /// Optimal cost `Cost(P_q, q)` at a cell.
    pub fn cost(&self, cell: Cell) -> f64 {
        self.cell_cost[cell]
    }

    /// Optimal plan id at a cell.
    pub fn plan_id(&self, cell: Cell) -> PlanId {
        self.cell_plan[cell]
    }

    /// The plan with the given id.
    pub fn plan(&self, id: PlanId) -> &std::sync::Arc<PlanNode> {
        self.registry.plan(id)
    }

    /// Minimum optimal cost over the grid (at the origin under PCM).
    pub fn cmin(&self) -> f64 {
        self.cell_cost.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum optimal cost over the grid (at the terminus under PCM).
    pub fn cmax(&self) -> f64 {
        self.cell_cost.iter().copied().fold(0.0, f64::max)
    }

    /// Number of distinct POSP plans.
    pub fn num_plans(&self) -> usize {
        self.registry.len()
    }

    /// Cost of an arbitrary registered plan at an arbitrary cell (used by
    /// anorexic reduction, AlignedBound's replacement search, and the
    /// native-optimizer baseline).
    pub fn cost_of_plan_at(&self, optimizer: &Optimizer<'_>, id: PlanId, cell: Cell) -> f64 {
        optimizer.cost_of(self.registry.plan(id), &self.grid.location(cell))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_catalog::{Catalog, CatalogBuilder, Query, QueryBuilder, RelationBuilder};
    use rqp_qplan::CostModel;

    fn fixture() -> (Catalog, Query) {
        let catalog = CatalogBuilder::new()
            .relation(
                RelationBuilder::new("part", 2_000_000)
                    .indexed_column("p_partkey", 2_000_000, 8)
                    .column("p_price", 50_000, 8)
                    .build(),
            )
            .relation(
                RelationBuilder::new("lineitem", 60_000_000)
                    .indexed_column("l_partkey", 2_000_000, 8)
                    .indexed_column("l_orderkey", 15_000_000, 8)
                    .build(),
            )
            .relation(
                RelationBuilder::new("orders", 15_000_000)
                    .indexed_column("o_orderkey", 15_000_000, 8)
                    .build(),
            )
            .build();
        let query = QueryBuilder::new(&catalog, "EQ")
            .table("part")
            .table("lineitem")
            .table("orders")
            .epp_join("part", "p_partkey", "lineitem", "l_partkey")
            .epp_join("orders", "o_orderkey", "lineitem", "l_orderkey")
            .filter("part", "p_price", 0.05)
            .build()
            .unwrap();
        (catalog, query)
    }

    #[test]
    fn compiles_with_multiple_plans_and_monotone_costs() {
        let (catalog, query) = fixture();
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let grid = Grid::uniform(2, 12, 1e-6).unwrap();
        let posp = Posp::compile(&opt, grid);

        assert!(posp.num_plans() >= 3, "expected plan diversity, got {}", posp.num_plans());
        assert!(posp.cmin() > 0.0);
        assert!(posp.cmax() / posp.cmin() > 4.0, "cost surface should span several doublings");
        // PCM on the optimal surface: cost non-decreasing along each axis
        let g = posp.grid();
        for cell in g.cells() {
            for d in 0..g.dims() {
                if g.coord(cell, d) + 1 < g.res(d) {
                    let mut coords = g.coords_of(cell);
                    coords[d] += 1;
                    let up = g.index(&coords);
                    assert!(
                        posp.cost(up) >= posp.cost(cell) * (1.0 - 1e-12),
                        "optimal cost decreased along dim {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn cell_costs_match_reoptimization() {
        let (catalog, query) = fixture();
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let grid = Grid::uniform(2, 6, 1e-5).unwrap();
        let posp = Posp::compile(&opt, grid);
        for cell in [0usize, 7, 17, posp.grid().terminus()] {
            let loc = posp.grid().location(cell);
            let planned = opt.optimize(&loc);
            assert!((planned.cost - posp.cost(cell)).abs() < 1e-9 * planned.cost);
            // optimal plan cost at its own cell equals the recorded cost
            let via_registry = posp.cost_of_plan_at(&opt, posp.plan_id(cell), cell);
            assert!((via_registry - posp.cost(cell)).abs() < 1e-9 * planned.cost);
        }
    }

    #[test]
    fn compilation_is_deterministic() {
        let (catalog, query) = fixture();
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let a = Posp::compile(&opt, Grid::uniform(2, 8, 1e-5).unwrap());
        let b = Posp::compile(&opt, Grid::uniform(2, 8, 1e-5).unwrap());
        assert_eq!(a.cell_plan, b.cell_plan);
        assert_eq!(a.num_plans(), b.num_plans());
    }

    /// Pin the documented degrade path: `Recost { seed_stride: 0 | 1 }`
    /// falls through the `seed_stride > 1` guard in `compile_with` into the
    /// exact surface — no `step_by(0)` panic, no division by zero in the
    /// seed-box arithmetic, and a surface bitwise-identical to
    /// `CompileMode::Exact`.
    #[test]
    fn degenerate_recost_strides_degrade_to_exact() {
        let (catalog, query) = fixture();
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let exact =
            Posp::compile_with(&opt, Grid::uniform(2, 8, 1e-5).unwrap(), CompileMode::Exact);
        for stride in [0usize, 1] {
            let degraded = Posp::compile_with(
                &opt,
                Grid::uniform(2, 8, 1e-5).unwrap(),
                CompileMode::Recost { seed_stride: stride },
            );
            assert_eq!(degraded.cell_plan, exact.cell_plan, "stride {stride}");
            assert_eq!(
                degraded.cell_cost.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
                exact.cell_cost.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
                "stride {stride}"
            );
            assert_eq!(degraded.num_plans(), exact.num_plans(), "stride {stride}");
        }
    }
}
