//! Seeded property-style tests: every discovery algorithm, many random
//! fault schedules, three invariants — termination, honest accounting,
//! and exact clean-trace reproduction under a zero-fault schedule.

use rqp_chaos::{standard_schedules, sweep, FaultConfig, FaultPlan};
use rqp_core::invariants::check_trace_accounting;
use rqp_core::{
    AlignedBound, Discovery, DiscoveryTrace, NativeOptimizer, PlanBouquet, ReOptimizer, SpillBound,
};
use rqp_ess::EssConfig;
use rqp_workloads::Workload;

fn algorithms() -> Vec<Box<dyn Discovery>> {
    vec![
        Box::new(PlanBouquet::new()),
        Box::new(SpillBound::new()),
        Box::new(AlignedBound::new()),
        Box::new(NativeOptimizer),
        Box::new(ReOptimizer::default()),
    ]
}

/// A canonical rendering of everything that must replay exactly: the
/// human-readable trace plus the bit patterns of the accounted floats.
fn fingerprint(t: &DiscoveryTrace) -> String {
    let bits: Vec<String> = t
        .steps
        .iter()
        .map(|s| format!("{:016x}:{:016x}", s.budget.to_bits(), s.spent.to_bits()))
        .collect();
    format!("{}\n{:016x}\n{}", t.render(), t.total_cost.to_bits(), bits.join(","))
}

#[test]
fn fifty_plus_seeded_schedules_terminate_with_honest_accounting() {
    let w = Workload::q91(2).unwrap();
    let plan = FaultPlan::idle();
    let mut rt = w.runtime(EssConfig { resolution: 8, ..Default::default() }).unwrap();
    rt.set_fault_injector(&plan);
    let grid_cells = [rt.grid().origin(), rt.grid().num_cells() / 2, rt.grid().terminus()];
    let algos = algorithms();

    let mut checked = 0usize;
    for seed in 0..55u64 {
        // alternate single-class and storm schedules across seeds
        let cfg = match seed % 5 {
            0 => FaultConfig::single(seed, "fail", 0.4),
            1 => FaultConfig::single(seed, "spurious_exhaust", 0.4),
            2 => FaultConfig::single(seed, "perturb_cost", 0.4),
            3 => FaultConfig::single(seed, "corrupt_observation", 0.4),
            _ => FaultConfig::storm(seed, 0.3),
        };
        let qa = grid_cells[(seed % 3) as usize];
        for algo in &algos {
            plan.reconfigure(cfg);
            let t = algo.discover(&rt, qa);
            check_trace_accounting(&t)
                .unwrap_or_else(|e| panic!("seed {seed} {}: {e}", algo.name()));
            assert!(
                t.subopt().is_finite() && t.subopt() > 0.0,
                "seed {seed} {}: subopt {}",
                algo.name(),
                t.subopt()
            );
            let completed = t.steps.last().is_some_and(|s| s.completed);
            assert!(
                completed || t.failed(),
                "seed {seed} {}: neither completed nor failed",
                algo.name()
            );
            checked += 1;
        }
    }
    assert!(checked >= 5 * 55);
}

#[test]
fn bouquet_family_survives_a_total_failure_storm() {
    // p_fail = 1.0, uncapped: every injected-engine execution crashes.
    // The supervisor's quarantine → fall-through → clean-last-resort
    // ladder must still complete every bouquet-family discovery.
    let w = Workload::q91(2).unwrap();
    let plan = FaultPlan::idle();
    let mut rt = w.runtime(EssConfig { resolution: 6, ..Default::default() }).unwrap();
    rt.set_fault_injector(&plan);
    let qa = rt.grid().terminus();
    for (i, algo) in
        [&PlanBouquet::new() as &dyn Discovery, &SpillBound::new(), &AlignedBound::new()]
            .into_iter()
            .enumerate()
    {
        plan.reconfigure(FaultConfig::single(1000 + i as u64, "fail", 1.0));
        let t = algo.discover(&rt, qa);
        assert!(t.steps.last().is_some_and(|s| s.completed), "{} did not complete", algo.name());
        assert!(!t.failed(), "{} reported structured failure", algo.name());
        assert!(t.faulted_steps() > 0, "{} saw no faults under p_fail=1", algo.name());
        check_trace_accounting(&t).unwrap();
    }
}

#[test]
fn zero_fault_schedules_reproduce_the_clean_trace_byte_for_byte() {
    let w = Workload::q91(2).unwrap();
    let plan = FaultPlan::idle();
    let mut rt = w.runtime(EssConfig { resolution: 8, ..Default::default() }).unwrap();
    let cells = [rt.grid().origin(), rt.grid().num_cells() / 2, rt.grid().terminus()];

    // clean pass: no injector attached at all
    let mut clean = Vec::new();
    for algo in &algorithms() {
        for &qa in &cells {
            clean.push(fingerprint(&algo.discover(&rt, qa)));
        }
    }

    // quiet pass: injector attached but zero-rate
    rt.set_fault_injector(&plan);
    plan.reconfigure(FaultConfig::quiet(123));
    let mut quiet = Vec::new();
    for algo in &algorithms() {
        for &qa in &cells {
            quiet.push(fingerprint(&algo.discover(&rt, qa)));
        }
    }

    assert_eq!(clean.len(), quiet.len());
    for (c, q) in clean.iter().zip(&quiet) {
        assert_eq!(c, q, "quiet-injector trace diverged from the clean trace");
    }
    assert_eq!(plan.counts().total(), 0);
}

#[test]
fn the_standard_sweep_passes_its_own_invariants() {
    let w = Workload::q91(2).unwrap();
    let plan = FaultPlan::idle();
    let mut rt = w.runtime(EssConfig { resolution: 6, ..Default::default() }).unwrap();
    rt.set_fault_injector(&plan);
    let cells = [rt.grid().terminus()];
    let schedules = standard_schedules(2024, 0.35);
    let report = sweep(&rt, &plan, &cells, &schedules).unwrap();
    // 6 schedules × 5 algorithms × 1 cell
    assert_eq!(report.runs.len(), 30);
    assert!(report.total_faults() > 0, "sweep injected nothing");
    let rendered = report.render();
    assert!(rendered.contains("PB"));
    assert!(rendered.contains("storm"));
}
