//! The chaos sweep: run every discovery algorithm against seeded fault
//! schedules and check the robustness invariants that survive injection.
//!
//! Three invariants are asserted on **every** run, regardless of fault
//! class:
//!
//! 1. **Termination with honest accounting** — discovery returns, every
//!    step's expenditure is finite and non-negative, and the step
//!    expenditures sum to the trace's accounted total
//!    ([`check_trace_accounting`]); wasted retry work is accounted cost,
//!    never hidden cost.
//! 2. **Guaranteed completion for the bouquet family** — PlanBouquet,
//!    SpillBound and AlignedBound never report a structured failure: the
//!    supervisor's quarantine → fall-through → last-resort ladder always
//!    ends in a completed execution. (Native and ReOpt are *allowed* to
//!    fail structurally — that asymmetry is the point of the baseline.)
//! 3. **Degraded cost cap** — the bouquet family's accounted cost stays
//!    below [`degraded_cost_cap`]: per band, at most `D` spill plus
//!    `density` full executions, each dilated by at most the policy's
//!    [`degraded_factor`](RetryPolicy::degraded_factor).
//!
//! Quiet (zero-rate) schedules additionally assert the *clean* guarantees
//! — SpillBound and AlignedBound within the band-adjusted `2·(D²+3D)` —
//! so the control arm proves the supervisor costs nothing when nothing
//! goes wrong.

use crate::plan::{FaultConfig, FaultCounts, FaultPlan};
use rqp_core::invariants::check_trace_accounting;
use rqp_core::{
    sb_guarantee, AlignedBound, Discovery, NativeOptimizer, PlanBouquet, ReOptimizer, RetryPolicy,
    RobustRuntime, SpillBound,
};
use rqp_ess::Cell;

/// Relative slack for bound comparisons.
const SLACK: f64 = 1e-9;

/// The per-class schedule suite swept for one seed: the quiet control
/// arm, one single-class schedule per fault class, and a mixed storm.
pub fn standard_schedules(seed: u64, rate: f64) -> Vec<(&'static str, FaultConfig)> {
    vec![
        ("quiet", FaultConfig::quiet(seed)),
        ("fail", FaultConfig::single(seed.wrapping_add(1), "fail", rate)),
        ("spurious_exhaust", FaultConfig::single(seed.wrapping_add(2), "spurious_exhaust", rate)),
        ("perturb_cost", FaultConfig::single(seed.wrapping_add(3), "perturb_cost", rate)),
        (
            "corrupt_observation",
            FaultConfig::single(seed.wrapping_add(4), "corrupt_observation", rate),
        ),
        ("storm", FaultConfig::storm(seed.wrapping_add(5), rate)),
    ]
}

/// Upper bound on what a supervised bouquet-family discovery can spend:
/// per band, `D` spill executions plus the full contour density of
/// budgeted executions, every one dilated by the retry policy's
/// worst-case charge factor, at the band's upper cost edge.
pub fn degraded_cost_cap(rt: &RobustRuntime<'_>, policy: &RetryPolicy) -> f64 {
    let d = rt.dims() as f64;
    let factor = policy.degraded_factor();
    let mut cap = 0.0;
    for b in 0..rt.num_bands() {
        let density = rt.band_density(b).max(1) as f64;
        let edge_hi = rt.contour_cost(b) * rt.contour_ratio();
        cap += (d + density) * factor * edge_hi;
    }
    cap
}

/// One algorithm × schedule × instance outcome.
#[derive(Debug, Clone)]
pub struct ChaosRun {
    /// Algorithm display name.
    pub algo: &'static str,
    /// Schedule label (fault class).
    pub schedule: &'static str,
    /// The schedule's seed after per-run mixing.
    pub seed: u64,
    /// The query instance.
    pub qa: Cell,
    /// Faults the plan injected during this run.
    pub faults: FaultCounts,
    /// Trace steps (executions, including retries).
    pub steps: usize,
    /// Retried executions in the trace.
    pub retries: usize,
    /// Plans quarantined during the run.
    pub quarantined: usize,
    /// Accounted discovery cost.
    pub total_cost: f64,
    /// Accounted sub-optimality (cost / oracle).
    pub subopt: f64,
    /// Whether the trace reports a structured failure.
    pub failed: bool,
}

/// Aggregated sweep results.
#[derive(Debug, Default)]
pub struct ChaosReport {
    /// Every run, in sweep order.
    pub runs: Vec<ChaosRun>,
}

impl ChaosReport {
    /// Total faults injected across the sweep.
    pub fn total_faults(&self) -> u32 {
        self.runs.iter().map(|r| r.faults.total()).sum()
    }

    /// Runs that ended in a structured failure (baselines only).
    pub fn structured_failures(&self) -> usize {
        self.runs.iter().filter(|r| r.failed).count()
    }

    /// Human-readable sweep summary, one line per algorithm × schedule.
    pub fn render(&self) -> String {
        use std::collections::BTreeMap;
        use std::fmt::Write as _;
        #[derive(Default)]
        struct Agg {
            runs: usize,
            faults: u32,
            retries: usize,
            failures: usize,
            max_subopt: f64,
        }
        let mut agg: BTreeMap<(&str, &str), Agg> = BTreeMap::new();
        for r in &self.runs {
            let e = agg.entry((r.algo, r.schedule)).or_default();
            e.runs += 1;
            e.faults += r.faults.total();
            e.retries += r.retries;
            e.failures += usize::from(r.failed);
            e.max_subopt = e.max_subopt.max(r.subopt);
        }
        let mut out = String::from(
            "algo       schedule              runs  faults  retries  failures  max-subopt\n",
        );
        for ((algo, sched), Agg { runs, faults, retries, failures, max_subopt: max_so }) in agg {
            let _ = writeln!(
                out,
                "{algo:<10} {sched:<20} {runs:>5} {faults:>7} {retries:>8} {failures:>9}  {max_so:>9.3}",
            );
        }
        let _ = writeln!(
            out,
            "total: {} runs, {} faults injected, {} structured failures",
            self.runs.len(),
            self.total_faults(),
            self.structured_failures()
        );
        out
    }
}

fn algorithms() -> Vec<Box<dyn Discovery>> {
    vec![
        Box::new(PlanBouquet::new()),
        Box::new(SpillBound::new()),
        Box::new(AlignedBound::new()),
        Box::new(NativeOptimizer),
        Box::new(ReOptimizer::default()),
    ]
}

fn is_bouquet_family(name: &str) -> bool {
    matches!(name, "PB" | "SB" | "AB")
}

/// Sweep every discovery algorithm over `cells` × `schedules` on a
/// runtime whose engine carries `plan` as its fault injector, asserting
/// the robustness invariants described in the module docs.
///
/// The caller attaches the plan (`rt.set_fault_injector(&plan)`) before
/// calling; the sweep reconfigures it in place per run, mixing the
/// schedule seed with the algorithm and instance so no two runs share a
/// fault stream.
///
/// # Errors
/// Returns the first invariant violation, fully seeded for replay.
pub fn sweep(
    rt: &RobustRuntime<'_>,
    plan: &FaultPlan,
    cells: &[Cell],
    schedules: &[(&'static str, FaultConfig)],
) -> Result<ChaosReport, String> {
    let algos = algorithms();
    let policy = rt.retry_policy();
    let cap = degraded_cost_cap(rt, &policy);
    let clean_sb_bound = 2.0 * sb_guarantee(rt.dims());
    let mut report = ChaosReport::default();

    for (label, base) in schedules {
        for (ai, algo) in algos.iter().enumerate() {
            for &qa in cells {
                let mut cfg = *base;
                cfg.seed = base
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((ai as u64) << 32)
                    .wrapping_add(qa as u64);
                plan.reconfigure(cfg);
                let trace = algo.discover(rt, qa);
                let faults = plan.counts();
                let ctx = format!("{} / {label} / seed {} / qa {qa}", algo.name(), cfg.seed);

                check_trace_accounting(&trace).map_err(|e| format!("{ctx}: {e}"))?;
                if !trace.subopt().is_finite() || trace.subopt() <= 0.0 {
                    return Err(format!("{ctx}: subopt {} not finite/positive", trace.subopt()));
                }
                let completed = trace.steps.last().is_some_and(|s| s.completed);
                if !trace.failed() && !completed {
                    return Err(format!("{ctx}: neither completed nor structured failure"));
                }
                if is_bouquet_family(algo.name()) {
                    if trace.failed() {
                        return Err(format!(
                            "{ctx}: bouquet-family algorithm reported a structured failure"
                        ));
                    }
                    if trace.total_cost > cap * (1.0 + SLACK) {
                        return Err(format!(
                            "{ctx}: accounted cost {} breaches the degraded cap {cap}",
                            trace.total_cost
                        ));
                    }
                }
                if *label == "quiet" {
                    if trace.failed() {
                        return Err(format!("{ctx}: structured failure without any faults"));
                    }
                    if faults.total() != 0 {
                        return Err(format!("{ctx}: quiet schedule injected {faults:?}"));
                    }
                    if matches!(algo.name(), "SB" | "AB")
                        && trace.subopt() > clean_sb_bound * (1.0 + SLACK)
                    {
                        return Err(format!(
                            "{ctx}: clean subopt {} exceeds the band-adjusted bound \
                             {clean_sb_bound}",
                            trace.subopt()
                        ));
                    }
                }

                report.runs.push(ChaosRun {
                    algo: algo.name(),
                    schedule: label,
                    seed: cfg.seed,
                    qa,
                    faults,
                    steps: trace.steps.len(),
                    retries: trace.retries(),
                    quarantined: trace.quarantined.len(),
                    total_cost: trace.total_cost,
                    subopt: trace.subopt(),
                    failed: trace.failed(),
                });
            }
        }
    }
    // leave the injector quiet so later (non-chaos) use of the runtime is
    // unaffected even though the plan stays attached
    plan.reconfigure(FaultConfig::quiet(0));
    Ok(report)
}

/// A small deterministic spread of query instances for sweeps: origin,
/// interior points and the terminus.
pub fn probe_cells(rt: &RobustRuntime<'_>) -> Vec<Cell> {
    let grid = rt.grid();
    let n = grid.num_cells();
    let mut cells = vec![grid.origin(), n / 3, n / 2, 2 * n / 3, grid.terminus()];
    cells.dedup();
    cells
}
