//! Seeded fault injection for the **compile and cache seams**.
//!
//! PR 7's executor seams exercise the *discovery* recovery machinery
//! (retry, quarantine, last resort); the serving tier's remaining failure
//! domain is the compile path itself — the single-flight ESS compile and
//! the persistent snapshot cache around it. A [`CompileFaultPlan`] drives
//! those seams with the same discipline as [`crate::plan::FaultPlan`]:
//! the whole schedule is a pure function of a 64-bit seed, quiet plans
//! draw nothing from the PRNG stream, and every injection is counted (and
//! exported via `rqp_chaos_compile_faults_injected_total{class=…}`) so a
//! harness can reconcile injected faults against observed recoveries.
//!
//! Fault classes and the recovery path each one exists to test:
//!
//! * [`CompileFault::Panic`] — the compile unwinds mid-flight; the
//!   registry's drop guard must open the breaker instead of wedging
//!   waiters.
//! * [`CompileFault::Fail`] — the compile returns a structured error; the
//!   per-fingerprint circuit breaker must open, back off, and re-probe.
//! * [`CompileFault::SlowIo`] — the compile (or cache IO) stalls; peers
//!   must honor their deadlines via timed waits instead of blocking.
//! * [`CompileFault::CorruptEntry`] — the on-disk cache entry is garbage;
//!   the cache must quarantine it to `*.corrupt` and recompile.

use crate::rng::SplitMix64;
use parking_lot::Mutex;
use rqp_obs::{global, labeled, names};

/// Where in the compile path an injection decision is being made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompileSeam {
    /// Entering an ESS compile (the single-flight critical section).
    Compile,
    /// About to read a persistent cache entry from disk.
    CacheLoad,
}

/// A fault injected at a compile seam.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompileFault {
    /// The compile unwinds (panics) mid-flight.
    Panic,
    /// The compile returns a structured internal error.
    Fail,
    /// IO/compile stalls for this many milliseconds before proceeding.
    SlowIo {
        /// Injected stall duration in milliseconds.
        millis: u64,
    },
    /// The on-disk cache entry is corrupted before it is read.
    CorruptEntry,
}

impl CompileFault {
    /// Stable class label for metrics and events.
    pub fn class(&self) -> &'static str {
        match self {
            CompileFault::Panic => "panic",
            CompileFault::Fail => "fail",
            CompileFault::SlowIo { .. } => "slow_io",
            CompileFault::CorruptEntry => "corrupt_entry",
        }
    }
}

/// A hook the serving registry consults at each compile seam.
///
/// Mirrors `rqp_executor::FaultInjector`; implementations must be cheap
/// and thread-safe (one registry, many sessions).
pub trait CompileFaultInjector: Sync {
    /// Decide whether (and how) to strike this seam crossing.
    fn inject(&self, seam: CompileSeam) -> Option<CompileFault>;
}

/// A deterministic compile-fault schedule: per-class rates plus the seed
/// that fixes exactly which compiles are struck.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompileFaultConfig {
    /// Seed for the schedule's PRNG stream.
    pub seed: u64,
    /// Probability a compile panics mid-flight.
    pub p_panic: f64,
    /// Probability a compile returns a structured failure.
    pub p_fail: f64,
    /// Probability of an injected slow-IO stall.
    pub p_slow: f64,
    /// Probability a cache entry is corrupted before it is read.
    pub p_corrupt: f64,
    /// Stall duration for injected slow IO, in milliseconds.
    pub slow_ms: u64,
    /// Optional cap on total injected faults (`None` = unlimited). A cap
    /// makes a transiently-failing fingerprint *recover*: after the burst
    /// the schedule goes quiet and the breaker's re-probe succeeds.
    pub max_faults: Option<u32>,
}

impl CompileFaultConfig {
    /// A schedule that never injects anything — the control arm.
    pub fn quiet(seed: u64) -> Self {
        CompileFaultConfig {
            seed,
            p_panic: 0.0,
            p_fail: 0.0,
            p_slow: 0.0,
            p_corrupt: 0.0,
            slow_ms: 0,
            max_faults: None,
        }
    }

    /// A single-class schedule: rate `p` for `class`
    /// ("panic" | "fail" | "slow_io" | "corrupt_entry"), zero for the
    /// rest.
    pub fn single(seed: u64, class: &str, p: f64) -> Self {
        let mut c = CompileFaultConfig::quiet(seed);
        c.slow_ms = 50;
        match class {
            "panic" => c.p_panic = p,
            "fail" => c.p_fail = p,
            "slow_io" => c.p_slow = p,
            _ => c.p_corrupt = p,
        }
        c
    }

    /// A mixed-class storm at rate `p` per class, capped so every
    /// fingerprint eventually compiles and the run terminates.
    pub fn storm(seed: u64, p: f64) -> Self {
        CompileFaultConfig {
            seed,
            p_panic: p,
            p_fail: p,
            p_slow: p,
            p_corrupt: p,
            slow_ms: 20,
            max_faults: Some(16),
        }
    }

    /// Sum of the compile-seam class rates.
    pub fn total_rate(&self) -> f64 {
        self.p_panic + self.p_fail + self.p_slow + self.p_corrupt
    }
}

/// Injected compile-fault counts per class, snapshotted from a plan.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CompileFaultCounts {
    /// Mid-flight compile panics.
    pub panics: u32,
    /// Structured compile failures.
    pub fails: u32,
    /// Injected slow-IO stalls.
    pub slow: u32,
    /// Corrupted cache entries.
    pub corrupt: u32,
}

impl CompileFaultCounts {
    /// Total injected compile faults.
    pub fn total(&self) -> u32 {
        self.panics + self.fails + self.slow + self.corrupt
    }
}

struct CompileState {
    config: CompileFaultConfig,
    rng: SplitMix64,
    counts: CompileFaultCounts,
}

/// A reconfigurable, seeded [`CompileFaultInjector`].
pub struct CompileFaultPlan {
    state: Mutex<CompileState>,
}

impl CompileFaultPlan {
    /// A plan running `config`'s schedule from its seed.
    pub fn new(config: CompileFaultConfig) -> Self {
        CompileFaultPlan {
            state: Mutex::new(CompileState {
                config,
                rng: SplitMix64::new(config.seed),
                counts: CompileFaultCounts::default(),
            }),
        }
    }

    /// A quiet plan (control arm).
    pub fn idle() -> Self {
        CompileFaultPlan::new(CompileFaultConfig::quiet(0))
    }

    /// Replace the schedule: new config, PRNG rewound, counts cleared.
    pub fn reconfigure(&self, config: CompileFaultConfig) {
        let mut st = self.state.lock();
        st.config = config;
        st.rng = SplitMix64::new(config.seed);
        st.counts = CompileFaultCounts::default();
    }

    /// Faults injected since the last (re)configuration.
    pub fn counts(&self) -> CompileFaultCounts {
        self.state.lock().counts
    }

    /// The schedule currently in force.
    pub fn config(&self) -> CompileFaultConfig {
        self.state.lock().config
    }
}

impl CompileFaultInjector for CompileFaultPlan {
    fn inject(&self, seam: CompileSeam) -> Option<CompileFault> {
        let mut st = self.state.lock();
        if st.config.total_rate() <= 0.0 {
            // quiet plans draw nothing: the stream position is untouched,
            // so a quiet run is bit-identical to an injector-free run
            return None;
        }
        if let Some(cap) = st.config.max_faults {
            if st.counts.total() >= cap {
                return None;
            }
        }
        let u = st.rng.next_f64();
        let c = st.config;
        let fault = match seam {
            // the compile seam draws panic / fail / slow_io
            CompileSeam::Compile => {
                if u < c.p_panic {
                    st.counts.panics += 1;
                    CompileFault::Panic
                } else if u < c.p_panic + c.p_fail {
                    st.counts.fails += 1;
                    CompileFault::Fail
                } else if u < c.p_panic + c.p_fail + c.p_slow {
                    st.counts.slow += 1;
                    CompileFault::SlowIo { millis: c.slow_ms }
                } else {
                    return None;
                }
            }
            // the cache-load seam draws corrupt_entry / slow_io
            CompileSeam::CacheLoad => {
                if u < c.p_corrupt {
                    st.counts.corrupt += 1;
                    CompileFault::CorruptEntry
                } else if u < c.p_corrupt + c.p_slow {
                    st.counts.slow += 1;
                    CompileFault::SlowIo { millis: c.slow_ms }
                } else {
                    return None;
                }
            }
        };
        drop(st);
        global()
            .counter(&labeled(names::COMPILE_FAULTS_INJECTED, &[("class", fault.class())]))
            .inc();
        if rqp_obs::events_enabled() {
            rqp_obs::emit(
                rqp_obs::Event::new(names::EV_COMPILE_FAULT_INJECTED)
                    .with("class", fault.class())
                    .with("seam", format!("{seam:?}")),
            );
        }
        Some(fault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_replay_exactly_from_their_seed() {
        let cfg = CompileFaultConfig::storm(99, 0.3);
        let a = CompileFaultPlan::new(cfg);
        let b = CompileFaultPlan::new(cfg);
        for i in 0..300 {
            let seam = if i % 2 == 0 { CompileSeam::Compile } else { CompileSeam::CacheLoad };
            assert_eq!(a.inject(seam), b.inject(seam));
        }
        assert_eq!(a.counts(), b.counts());
    }

    #[test]
    fn quiet_plans_never_inject_and_never_advance_the_stream() {
        let plan = CompileFaultPlan::idle();
        for _ in 0..100 {
            assert!(plan.inject(CompileSeam::Compile).is_none());
        }
        assert_eq!(plan.counts().total(), 0);
        plan.reconfigure(CompileFaultConfig::storm(7, 1.0));
        let fresh = CompileFaultPlan::new(CompileFaultConfig::storm(7, 1.0));
        assert_eq!(plan.inject(CompileSeam::Compile), fresh.inject(CompileSeam::Compile));
    }

    #[test]
    fn the_fault_cap_silences_the_schedule() {
        let plan = CompileFaultPlan::new(CompileFaultConfig {
            max_faults: Some(3),
            ..CompileFaultConfig::storm(1, 1.0)
        });
        let mut injected = 0;
        for _ in 0..50 {
            if plan.inject(CompileSeam::Compile).is_some() {
                injected += 1;
            }
        }
        assert_eq!(injected, 3);
        assert_eq!(plan.counts().total(), 3);
    }

    #[test]
    fn seams_draw_only_their_own_classes() {
        let fails = CompileFaultPlan::new(CompileFaultConfig::single(5, "fail", 1.0));
        for _ in 0..20 {
            assert_eq!(fails.inject(CompileSeam::Compile), Some(CompileFault::Fail));
            // a fail-only schedule never strikes the cache-load seam
            assert_eq!(fails.inject(CompileSeam::CacheLoad), None);
        }
        let corrupt = CompileFaultPlan::new(CompileFaultConfig::single(5, "corrupt_entry", 1.0));
        for _ in 0..20 {
            assert_eq!(corrupt.inject(CompileSeam::CacheLoad), Some(CompileFault::CorruptEntry));
            assert_eq!(corrupt.inject(CompileSeam::Compile), None);
        }
    }
}
