//! Seeded fault plans: the [`FaultInjector`] implementation behind every
//! chaos run.
//!
//! A [`FaultPlan`] draws from a [`SplitMix64`] stream at each executor
//! seam and decides — reproducibly — whether that execution fails
//! mid-flight, spuriously reports budget exhaustion, comes back with a
//! perturbed observed cost, or yields a corrupted (NaN) spill
//! observation. The whole schedule is a pure function of the
//! [`FaultConfig`], so any anomaly a sweep surfaces replays exactly from
//! its seed.
//!
//! The plan is reconfigurable in place (interior mutability) because the
//! engine holds it by shared reference for the lifetime of the runtime: a
//! harness attaches one plan once and re-seeds it between schedules.

use crate::rng::SplitMix64;
use parking_lot::Mutex;
use rqp_executor::{FaultInjector, InjectedFault, Seam};

/// A deterministic fault schedule: per-class injection rates plus the
/// seed that fixes exactly which executions are struck.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for the schedule's PRNG stream.
    pub seed: u64,
    /// Probability an execution fails mid-flight (crash with sunk work).
    pub p_fail: f64,
    /// Probability of a spurious budget-exhaustion report.
    pub p_spurious: f64,
    /// Probability the observed cost is multiplicatively perturbed.
    pub p_perturb: f64,
    /// Probability a spill observation comes back corrupted (NaN).
    pub p_corrupt: f64,
    /// Maximum multiplicative cost distortion (factor drawn log-uniform
    /// in `[1/perturb_max, perturb_max]`). Must be ≥ 1.
    pub perturb_max: f64,
    /// Optional cap on total injected faults per schedule (`None` =
    /// unlimited). A cap guarantees even the harshest schedule eventually
    /// goes quiet, mirroring transient real-world fault bursts.
    pub max_faults: Option<u32>,
}

impl FaultConfig {
    /// A schedule that never injects anything — the control arm. A
    /// runtime carrying a quiet plan must produce byte-identical traces
    /// to one carrying no injector at all.
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            p_fail: 0.0,
            p_spurious: 0.0,
            p_perturb: 0.0,
            p_corrupt: 0.0,
            perturb_max: 1.0,
            max_faults: None,
        }
    }

    /// A single-class schedule: rate `p` for `class`
    /// ("fail" | "spurious_exhaust" | "perturb_cost" |
    /// "corrupt_observation"), zero for the rest.
    pub fn single(seed: u64, class: &str, p: f64) -> Self {
        let mut c = FaultConfig::quiet(seed);
        c.perturb_max = 4.0;
        match class {
            "fail" => c.p_fail = p,
            "spurious_exhaust" => c.p_spurious = p,
            "perturb_cost" => c.p_perturb = p,
            _ => c.p_corrupt = p,
        }
        c
    }

    /// A mixed-class storm: every class at rate `p`, capped so the run
    /// still terminates briskly.
    pub fn storm(seed: u64, p: f64) -> Self {
        FaultConfig {
            seed,
            p_fail: p,
            p_spurious: p,
            p_perturb: p,
            p_corrupt: p,
            perturb_max: 4.0,
            max_faults: Some(64),
        }
    }

    /// Sum of the class rates (the per-seam injection probability).
    pub fn total_rate(&self) -> f64 {
        self.p_fail + self.p_spurious + self.p_perturb + self.p_corrupt
    }
}

/// Injected-fault counts per class, snapshotted from a plan.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultCounts {
    /// Mid-flight execution failures.
    pub fail: u32,
    /// Spurious budget exhaustions.
    pub spurious: u32,
    /// Perturbed observed costs.
    pub perturb: u32,
    /// Corrupted spill observations.
    pub corrupt: u32,
}

impl FaultCounts {
    /// Total injected faults.
    pub fn total(&self) -> u32 {
        self.fail + self.spurious + self.perturb + self.corrupt
    }
}

struct PlanState {
    config: FaultConfig,
    rng: SplitMix64,
    counts: FaultCounts,
}

/// A reconfigurable, seeded [`FaultInjector`].
pub struct FaultPlan {
    state: Mutex<PlanState>,
}

impl FaultPlan {
    /// A plan running `config`'s schedule from its seed.
    pub fn new(config: FaultConfig) -> Self {
        FaultPlan {
            state: Mutex::new(PlanState {
                config,
                rng: SplitMix64::new(config.seed),
                counts: FaultCounts::default(),
            }),
        }
    }

    /// A quiet plan (control arm).
    pub fn idle() -> Self {
        FaultPlan::new(FaultConfig::quiet(0))
    }

    /// Replace the schedule: new config, PRNG rewound to the new seed,
    /// counts cleared. The engine's shared reference observes the change
    /// on its next seam.
    pub fn reconfigure(&self, config: FaultConfig) {
        let mut st = self.state.lock();
        st.config = config;
        st.rng = SplitMix64::new(config.seed);
        st.counts = FaultCounts::default();
    }

    /// Faults injected since the last (re)configuration.
    pub fn counts(&self) -> FaultCounts {
        self.state.lock().counts
    }

    /// The schedule currently in force.
    pub fn config(&self) -> FaultConfig {
        self.state.lock().config
    }
}

impl FaultInjector for FaultPlan {
    fn inject(&self, _seam: Seam) -> Option<InjectedFault> {
        let mut st = self.state.lock();
        if st.config.total_rate() <= 0.0 {
            // quiet plans draw nothing: the stream position is untouched,
            // so a quiet run is bit-identical to an injector-free run
            return None;
        }
        if let Some(cap) = st.config.max_faults {
            if st.counts.total() >= cap {
                return None;
            }
        }
        let u = st.rng.next_f64();
        let c = st.config;
        let fault = if u < c.p_fail {
            st.counts.fail += 1;
            let spent_frac = st.rng.next_f64();
            InjectedFault::Fail { spent_frac }
        } else if u < c.p_fail + c.p_spurious {
            st.counts.spurious += 1;
            InjectedFault::SpuriousExhaust
        } else if u < c.p_fail + c.p_spurious + c.p_perturb {
            st.counts.perturb += 1;
            // log-uniform in [1/perturb_max, perturb_max]
            let v = st.rng.next_f64();
            let factor = c.perturb_max.max(1.0).powf(2.0 * v - 1.0);
            InjectedFault::PerturbCost { factor }
        } else if u < c.total_rate() {
            st.counts.corrupt += 1;
            InjectedFault::CorruptObservation
        } else {
            return None;
        };
        Some(fault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_replay_exactly_from_their_seed() {
        let cfg = FaultConfig::storm(99, 0.2);
        let a = FaultPlan::new(cfg);
        let b = FaultPlan::new(cfg);
        for _ in 0..500 {
            let fa = a.inject(Seam::Budgeted);
            let fb = b.inject(Seam::Budgeted);
            assert_eq!(format!("{fa:?}"), format!("{fb:?}"));
        }
        assert_eq!(a.counts(), b.counts());
    }

    #[test]
    fn quiet_plans_never_inject_and_never_advance_the_stream() {
        let plan = FaultPlan::idle();
        for _ in 0..100 {
            assert!(plan.inject(Seam::Spill).is_none());
        }
        assert_eq!(plan.counts().total(), 0);
        // reconfiguring to a storm after the quiet draws behaves as a
        // fresh storm: the quiet phase consumed no stream positions
        plan.reconfigure(FaultConfig::storm(7, 1.0));
        let fresh = FaultPlan::new(FaultConfig::storm(7, 1.0));
        assert_eq!(
            format!("{:?}", plan.inject(Seam::Budgeted)),
            format!("{:?}", fresh.inject(Seam::Budgeted))
        );
    }

    #[test]
    fn the_fault_cap_silences_the_schedule() {
        let plan =
            FaultPlan::new(FaultConfig { max_faults: Some(3), ..FaultConfig::storm(1, 1.0) });
        let mut injected = 0;
        for _ in 0..50 {
            if plan.inject(Seam::SpillCoarse).is_some() {
                injected += 1;
            }
        }
        assert_eq!(injected, 3);
        assert_eq!(plan.counts().total(), 3);
    }

    #[test]
    fn class_rates_steer_the_class_mix() {
        let plan = FaultPlan::new(FaultConfig::single(5, "perturb_cost", 1.0));
        for _ in 0..20 {
            match plan.inject(Seam::Budgeted) {
                Some(InjectedFault::PerturbCost { factor }) => {
                    assert!((0.25..=4.0).contains(&factor));
                }
                other => unreachable!("expected PerturbCost, got {other:?}"),
            }
        }
        let c = plan.counts();
        assert_eq!(c.perturb, 20);
        assert_eq!(c.fail + c.spurious + c.corrupt, 0);
    }
}
