//! A self-contained, seedable PRNG for fault schedules.
//!
//! The repo-wide determinism rule (enforced by `rqp-lint`) bans RNG and
//! wall-clock access from the compilation crates (`ess`, `core`, `qplan`):
//! compiling the same query twice must produce bit-identical artifacts.
//! Chaos testing *needs* randomness — but only the reproducible kind, so
//! this crate owns its own tiny generator instead of pulling in `rand`:
//! a [SplitMix64](https://prng.di.unimi.it/splitmix64.c) stream, fully
//! determined by its 64-bit seed, identical on every platform.

/// SplitMix64: the 64-bit finalizer-based generator used to seed the
/// xoshiro family. Passes BigCrush; one `u64` of state; never zero-locked.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose entire future stream is fixed by `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next uniform draw in `[0, 1)`, built from the top 53 bits so the
    /// mapping to `f64` is exact.
    pub fn next_f64(&mut self) -> f64 {
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        (self.next_u64() >> 11) as f64 * SCALE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(0xDEAD_BEEF);
        let mut b = SplitMix64::new(0xDEAD_BEEF);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_vector_from_the_reference_implementation() {
        // splitmix64.c with seed 1234567
        let mut g = SplitMix64::new(1_234_567);
        assert_eq!(g.next_u64(), 6_457_827_717_110_365_317);
        assert_eq!(g.next_u64(), 3_203_168_211_198_807_973);
    }

    #[test]
    fn unit_draws_stay_in_range_and_vary() {
        let mut g = SplitMix64::new(42);
        let draws: Vec<f64> = (0..1000).map(|_| g.next_f64()).collect();
        assert!(draws.iter().all(|&u| (0.0..1.0).contains(&u)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from uniform");
    }
}
