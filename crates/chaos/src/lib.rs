#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! `rqp-chaos`: deterministic fault injection and the chaos harness for
//! the discovery runtime.
//!
//! Robustness to estimation error is the paper's subject; robustness to
//! *execution* error is this crate's. It drives the executor's fault
//! seams (`rqp_executor::FaultInjector`) with seeded, replayable
//! schedules and asserts that the supervised runtime (retry, quarantine,
//! degrade — see `rqp_core::supervise`) keeps every discovery algorithm
//! terminating with honestly accounted cost:
//!
//! * [`rng::SplitMix64`] — the crate-local seeded PRNG. The deterministic
//!   crates (`ess`, `core`, `qplan`) stay RNG-free under `rqp-lint`'s
//!   determinism rule; chaos is the designated owner of randomness, and
//!   only the reproducible kind.
//! * [`plan::FaultPlan`] / [`plan::FaultConfig`] — a reconfigurable
//!   injector whose whole schedule is a pure function of a 64-bit seed:
//!   mid-flight failures, spurious budget exhaustions, perturbed observed
//!   costs and corrupted (NaN) spill observations.
//! * [`compile::CompileFaultPlan`] / [`compile::CompileFaultConfig`] — the
//!   same discipline for the serving tier's **compile and cache seams**:
//!   seeded compile panics, structured compile failures, slow IO and
//!   cache-entry corruption, driving the registry's circuit breakers,
//!   timed waits and quarantine paths.
//! * [`harness::sweep`] — algorithms × instances × fault classes, with
//!   the invariants (termination, accounting, degraded cost cap, clean
//!   control arm) checked on every run.

pub mod compile;
pub mod harness;
pub mod plan;
pub mod rng;

pub use compile::{
    CompileFault, CompileFaultConfig, CompileFaultCounts, CompileFaultInjector, CompileFaultPlan,
    CompileSeam,
};
pub use harness::{
    degraded_cost_cap, probe_cells, standard_schedules, sweep, ChaosReport, ChaosRun,
};
pub use plan::{FaultConfig, FaultCounts, FaultPlan};
pub use rng::SplitMix64;
