//! End-to-end tests for the network serving tier: a sharded TCP
//! deployment must be indistinguishable from the in-process server —
//! byte-identical stable reports, the same structured rejections under
//! saturation, the same structured refusal of invalid specs — while
//! refusing hostile wire input without falling over.

use rqp_serve::{
    run_entries, serve_workload, session_fingerprint, Frame, FrameObserver, ServeConfig,
    SessionOutcome, TcpServeHost, TcpTransport,
};
use rqp_workloads::parse_session_file;
use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn fast_config() -> ServeConfig {
    ServeConfig { workers: 2, queue_cap: 64, resolution: Some(6), ..ServeConfig::default() }
}

fn bind_shards(n: usize, config: impl Fn() -> ServeConfig) -> (Vec<TcpServeHost>, Vec<String>) {
    let hosts: Vec<TcpServeHost> = (0..n)
        .map(|k| TcpServeHost::bind("127.0.0.1:0", config(), Some((k, n))).unwrap())
        .collect();
    let addrs = hosts.iter().map(|h| h.local_addr().to_string()).collect();
    (hosts, addrs)
}

/// The ISSUE's acceptance bar: a client driving a 2-shard TCP deployment
/// produces a `ServeReport` whose per-(query, algo) MSO/ASO rows are
/// byte-identical (via `stable_render`) to an in-process run of the same
/// workload — and per-step progress streams along the way.
#[test]
fn two_shard_tcp_serving_matches_in_proc_byte_for_byte() {
    let spec = "2D_Q91 sb x3\n2D_Q91 ab x2\n3D_Q15 sb x3\n3D_Q15 ab qa=3 x2\n";
    let entries = parse_session_file(spec).unwrap();
    let local = serve_workload(fast_config(), &entries).unwrap();

    let (hosts, addrs) = bind_shards(2, fast_config);
    let progress = Arc::new(AtomicUsize::new(0));
    let observer: FrameObserver = {
        let progress = Arc::clone(&progress);
        Arc::new(move |frame: &Frame| {
            if matches!(frame, Frame::Progress { .. }) {
                progress.fetch_add(1, Ordering::Relaxed);
            }
        })
    };
    let transport = TcpTransport::connect_with(&addrs, Some(6), Some(observer)).unwrap();
    let remote = run_entries(Box::new(transport), &entries).unwrap();

    assert_eq!(
        local.stable_render(),
        remote.stable_render(),
        "remote stable report must be byte-identical to the in-proc one"
    );
    assert!(
        progress.load(Ordering::Relaxed) > 0,
        "per-step discovery progress must stream over the wire"
    );

    // The two fingerprints route to different shards (deterministic: the
    // client and registry hash identically), so each shard served part
    // of the workload — prove the deployment actually sharded.
    let fp2 = session_fingerprint("2D_Q91", Some(6)).unwrap() % 2;
    let fp3 = session_fingerprint("3D_Q15", Some(6)).unwrap() % 2;
    assert_ne!(fp2, fp3, "test workload must span both shards");
    for (k, host) in hosts.into_iter().enumerate() {
        let shard_report = host.stop().unwrap();
        let want: usize = entries
            .iter()
            .filter(|e| session_fingerprint(&e.query, Some(6)).unwrap() % 2 == k as u64)
            .map(|e| e.count)
            .sum();
        assert_eq!(
            shard_report.results.len(),
            want,
            "shard {k} must have served exactly its fingerprints' sessions"
        );
    }
}

/// Queue saturation maps onto wire-level `Reject` frames: the client
/// records structured `Rejected` outcomes, every session is accounted
/// for, and nothing hangs or drops the connection.
#[test]
fn saturation_surfaces_as_structured_rejection_frames() {
    let config = || ServeConfig { workers: 1, queue_cap: 1, ..ServeConfig::default() };
    let (hosts, addrs) = bind_shards(1, config);
    let entries = parse_session_file("2D_Q91 sb x64\n").unwrap();
    let transport = TcpTransport::connect(&addrs, None).unwrap();
    let report = run_entries(Box::new(transport), &entries).unwrap();

    assert_eq!(report.results.len(), 64, "no session may be dropped");
    assert_eq!(
        report.completed() + report.rejected(),
        64,
        "every session ends completed or rejected: {}",
        report.render()
    );
    assert!(report.rejected() >= 1, "64 sessions into a 1-slot queue must overflow at least once");
    for r in &report.results {
        if r.outcome == SessionOutcome::Rejected {
            assert_eq!(r.query, "2D_Q91");
            assert_eq!(r.algo, "sb");
        }
    }
    // The server survives the burst and drains cleanly.
    let server_report = hosts.into_iter().next().unwrap().stop().unwrap();
    assert_eq!(server_report.completed(), report.completed());
}

/// An out-of-range `qa` cell fails structurally — same outcome label,
/// same stable report — whether the spec arrives in-process or as a
/// wire frame.
#[test]
fn out_of_range_qa_is_refused_structurally_local_and_remote() {
    let spec = "2D_Q91 sb qa=9999 x2\n2D_Q91 sb x2\n";
    let entries = parse_session_file(spec).unwrap();

    let local = serve_workload(fast_config(), &entries).unwrap();
    assert_eq!(local.invalid_specs(), 2);
    assert_eq!(local.completed(), 2);
    let refused =
        local.results.iter().find(|r| matches!(r.outcome, SessionOutcome::InvalidSpec(_))).unwrap();
    let SessionOutcome::InvalidSpec(reason) = &refused.outcome else { unreachable!() };
    assert!(reason.contains("out of range"), "{reason}");

    let (hosts, addrs) = bind_shards(1, fast_config);
    let transport = TcpTransport::connect(&addrs, Some(6)).unwrap();
    let remote = run_entries(Box::new(transport), &entries).unwrap();
    assert_eq!(remote.invalid_specs(), 2);
    assert_eq!(
        local.stable_render(),
        remote.stable_render(),
        "structured refusal must render identically local and remote"
    );
    hosts.into_iter().next().unwrap().stop().unwrap();
}

/// A hostile length prefix (4 GiB frame announcement) is refused before
/// any allocation: the connection is cut, and the server keeps serving
/// well-formed clients.
#[test]
fn hostile_length_prefix_drops_the_connection_but_not_the_server() {
    let (hosts, addrs) = bind_shards(1, fast_config);

    let mut evil = std::net::TcpStream::connect(&addrs[0]).unwrap();
    evil.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    // Consume the server's greeting, then announce a 0xFFFFFFFF-byte frame.
    match rqp_serve::read_frame(&mut evil).unwrap() {
        rqp_serve::WireRead::Frame(Frame::Hello { .. }) => {}
        other => panic!("expected hello, got {other:?}"),
    }
    evil.write_all(&[0xFF, 0xFF, 0xFF, 0xFF]).unwrap();
    evil.flush().unwrap();
    // The server answers with a structured error (best effort) and closes;
    // it must never try to honor the 4 GiB allocation.
    let mut saw_close = false;
    for _ in 0..8 {
        match rqp_serve::read_frame(&mut evil) {
            Ok(rqp_serve::WireRead::Frame(Frame::Error { .. })) => {}
            Ok(rqp_serve::WireRead::Closed) | Err(_) => {
                saw_close = true;
                break;
            }
            Ok(other) => panic!("unexpected frame after hostile prefix: {other:?}"),
        }
    }
    assert!(saw_close, "the poisoned connection must be cut");
    drop(evil);

    // A well-formed client on a fresh connection is served normally.
    let entries = parse_session_file("2D_Q91 sb x2\n").unwrap();
    let transport = TcpTransport::connect(&addrs, Some(6)).unwrap();
    let report = run_entries(Box::new(transport), &entries).unwrap();
    assert_eq!(report.completed(), 2, "server must survive the hostile client");
    hosts.into_iter().next().unwrap().stop().unwrap();
}

/// `Frame::Shutdown` flips the host's shutdown flag — the deployment
/// control path `rqp connect --shutdown true` relies on.
#[test]
fn shutdown_frame_requests_process_shutdown() {
    let (mut hosts, addrs) = bind_shards(1, fast_config);
    let host = hosts.pop().unwrap();
    assert!(!host.shutdown_requested());
    let mut transport = TcpTransport::connect(&addrs, Some(6)).unwrap();
    transport.send_shutdown().unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !host.shutdown_requested() {
        assert!(std::time::Instant::now() < deadline, "shutdown flag never flipped");
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(transport);
    host.stop().unwrap();
}
