//! End-to-end resilience tests: circuit-breaker recovery with pinned
//! transition sequences, graceful degradation, the crash-recovery and
//! chaos-storm drills, and quiet-schedule determinism.

use rqp_chaos::CompileFaultConfig;
use rqp_serve::registry::BreakerPhase;
use rqp_serve::{
    crash_recover_drill, serve_workload, storm_drill, BreakerConfig, ServeConfig, Server,
    SessionOutcome, SessionSpec,
};
use rqp_workloads::SessionEntry;
use std::time::Duration;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rqp-resilience-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fast_config() -> ServeConfig {
    ServeConfig { workers: 2, queue_cap: 64, resolution: Some(6), ..ServeConfig::default() }
}

/// A deterministically transient compile fault (exactly one structured
/// failure, then quiet) must walk the breaker through the exact
/// open → half_open → closed sequence and leave later sessions served.
#[test]
fn a_transient_compile_fault_recovers_with_exact_breaker_transitions() {
    let config = ServeConfig {
        compile_chaos: Some(CompileFaultConfig {
            max_faults: Some(1),
            ..CompileFaultConfig::single(11, "fail", 1.0)
        }),
        breaker: BreakerConfig {
            backoff_base: Duration::from_millis(30),
            backoff_max: Duration::from_millis(30),
        },
        ..fast_config()
    };
    let server = Server::start(config).unwrap();

    // Session 0: the injected failure opens the breaker.
    server.submit(SessionSpec::new(0, "2D_Q91", "sb")).unwrap();
    std::thread::sleep(Duration::from_millis(400));
    let states = server.breaker_states();
    assert_eq!(states.len(), 1, "{states:?}");
    assert_eq!(states[0].phase, BreakerPhase::Open, "{states:?}");
    assert_eq!(states[0].failures, 1);

    // Session 1, past the backoff window: the half-open re-probe compiles
    // cleanly (the fault budget is spent) and closes the breaker.
    server.submit(SessionSpec::new(1, "2D_Q91", "sb")).unwrap();
    std::thread::sleep(Duration::from_millis(600));
    let states = server.breaker_states();
    assert_eq!(states.len(), 1, "{states:?}");
    assert_eq!(states[0].phase, BreakerPhase::Closed, "{states:?}");

    let labels: Vec<&'static str> =
        server.breaker_transitions().iter().map(|(_, p)| p.label()).collect();
    assert_eq!(labels, vec!["open", "half_open", "closed"], "exact transition sequence");

    let stats = server.registry_stats();
    assert_eq!(stats.breaker_opens, 1, "{stats:?}");
    assert_eq!(stats.breaker_reprobes, 1, "{stats:?}");
    assert_eq!(stats.breaker_closes, 1, "{stats:?}");

    let report = server.drain();
    let by_id = |id: usize| report.results.iter().find(|r| r.id == id).unwrap();
    assert!(
        matches!(by_id(0).outcome, SessionOutcome::Failed(_)),
        "first session carries the injected failure: {:?}",
        by_id(0).outcome
    );
    assert_eq!(by_id(1).outcome, SessionOutcome::Completed, "re-probe session is served");
}

/// With `degrade` on, sessions refused by an open breaker are served by
/// the native optimizer instead — flagged, counted, with a finite
/// suboptimality — and with `degrade` off they fail structurally.
#[test]
fn an_open_breaker_degrades_gracefully_when_configured() {
    // Every compile fails forever; the long backoff keeps the breaker
    // open for the whole test.
    let chaos = CompileFaultConfig::single(23, "fail", 1.0);
    let breaker = BreakerConfig {
        backoff_base: Duration::from_secs(30),
        backoff_max: Duration::from_secs(30),
    };
    let entries =
        [SessionEntry { query: "2D_Q91".to_string(), algo: "sb".to_string(), count: 4, qa: None }];

    let degraded_report = serve_workload(
        ServeConfig {
            workers: 1, // serialize: first session opens the breaker
            compile_chaos: Some(chaos),
            breaker,
            degrade: true,
            ..fast_config()
        },
        &entries,
    )
    .unwrap();
    assert_eq!(
        degraded_report.count(|r| matches!(r.outcome, SessionOutcome::Failed(_))),
        1,
        "{}",
        degraded_report.render()
    );
    assert_eq!(degraded_report.degraded(), 3, "{}", degraded_report.render());
    for r in degraded_report.results.iter().filter(|r| r.outcome == SessionOutcome::Degraded) {
        let subopt = r.subopt.expect("degraded sessions report their suboptimality");
        assert!(subopt.is_finite() && subopt >= 1.0 - 1e-9, "subopt {subopt}");
    }
    let groups = degraded_report.group_stats();
    assert_eq!(groups.len(), 1);
    assert_eq!(groups[0].degraded, 3, "group rows surface the degraded count");

    let refused_report = serve_workload(
        ServeConfig {
            workers: 1,
            compile_chaos: Some(chaos),
            breaker,
            degrade: false,
            ..fast_config()
        },
        &entries,
    )
    .unwrap();
    assert_eq!(refused_report.breaker_refused(), 3, "{}", refused_report.render());
    let groups = refused_report.group_stats();
    assert_eq!(groups.len(), 1);
    assert_eq!(groups[0].breaker_open, 3, "group rows surface the refusals");
}

/// The crash-recovery drill: zero recompiles after a registry wipe, the
/// global compile counter unchanged, byte-identical reports.
#[test]
fn crash_recovery_drill_restores_from_disk_with_zero_recompiles() {
    let dir = temp_dir("crash");
    let drill = crash_recover_drill(&dir).unwrap();
    assert!(drill.passed(), "{}", drill.render());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The seeded chaos storm over ≥ 100 sessions: every session's wall stays
/// within deadline + grace, breaker counters stay consistent, and every
/// admitted session ends in a structured outcome.
#[test]
fn storm_drill_holds_the_resilience_bounds() {
    let drill = storm_drill(0xC0FFEE, 120).unwrap();
    assert!(drill.passed(), "{}", drill.render());
}

/// Quiet schedules are deterministic end to end: a run with no chaos and
/// a run with an all-zero-rate chaos schedule render byte-identically
/// (the injector draws nothing from its PRNG stream for quiet classes).
#[test]
fn quiet_schedules_render_byte_identically() {
    let entries = [
        SessionEntry { query: "2D_Q91".to_string(), algo: "sb".to_string(), count: 4, qa: None },
        SessionEntry { query: "2D_Q91".to_string(), algo: "ab".to_string(), count: 2, qa: None },
    ];
    let without_chaos = serve_workload(fast_config(), &entries).unwrap();
    let with_quiet_chaos = serve_workload(
        ServeConfig { compile_chaos: Some(CompileFaultConfig::quiet(99)), ..fast_config() },
        &entries,
    )
    .unwrap();
    assert_eq!(
        without_chaos.stable_render(),
        with_quiet_chaos.stable_render(),
        "quiet chaos arm must be byte-identical to the control arm"
    );
}
