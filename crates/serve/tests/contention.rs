//! Stress tests for the serving layer: single-flight compilation under
//! heavy contention, non-blocking admission control at queue saturation,
//! and session-level determinism — a discovery trace must be
//! byte-identical whether the session runs alone or alongside 16 peers
//! hammering the same shared registry.

use rqp_catalog::RqpError;
use rqp_chaos::FaultConfig;
use rqp_serve::{serve_workload, Lookup, ServeConfig, Server, SessionOutcome, SessionSpec};
use rqp_workloads::parse_session_file;

#[test]
fn sixteen_simultaneous_sessions_compile_exactly_once() {
    let server =
        Server::start(ServeConfig { workers: 16, queue_cap: 16, ..ServeConfig::default() })
            .unwrap();
    for id in 0..16 {
        server.submit(SessionSpec::new(id, "2D_Q91", "sb")).unwrap();
    }
    let report = server.drain();
    assert_eq!(report.completed(), 16, "{}", report.render());
    assert_eq!(report.registry.compiles, 1, "single-flight: one compile for one fingerprint");
    assert_eq!(report.registry.entries, 1);
    let compiled = report.count(|r| r.lookup == Some(Lookup::Compiled));
    assert_eq!(compiled, 1, "exactly one session ran the compile");
    let shared = report.count(|r| matches!(r.lookup, Some(Lookup::Hit) | Some(Lookup::Waited)));
    assert_eq!(shared, 15, "every peer rode the shared surface");
}

#[test]
fn saturated_queue_rejects_with_structured_overload_and_never_deadlocks() {
    // Direct admission: with one worker and a single queue slot, a burst
    // must see at least one structured rejection — and the rejection is an
    // immediate error, not a block.
    let server =
        Server::start(ServeConfig { workers: 1, queue_cap: 1, ..ServeConfig::default() }).unwrap();
    let mut admitted = 0u64;
    let mut rejected = 0u64;
    for id in 0..8 {
        match server.submit(SessionSpec::new(id, "2D_Q91", "sb")) {
            Ok(()) => admitted += 1,
            Err(RqpError::Overloaded { queue_depth, cap }) => {
                assert_eq!(cap, 1);
                assert!(queue_depth >= 1);
                rejected += 1;
            }
            Err(other) => panic!("expected Overloaded, got {other}"),
        }
    }
    assert_eq!(admitted + rejected, 8);
    assert!(rejected >= 1, "a burst of 8 into a 1-slot queue must overflow");
    let report = server.drain();
    assert_eq!(report.completed(), admitted, "every admitted session finished");

    // Driver-level saturation: 64 sessions through workers=2/queue=4 must
    // account for every single one (completed or rejected, nothing lost,
    // no deadlock).
    let entries = parse_session_file("2D_Q91 sb x64\n").unwrap();
    let report = serve_workload(
        ServeConfig { workers: 2, queue_cap: 4, ..ServeConfig::default() },
        &entries,
    )
    .unwrap();
    assert_eq!(report.results.len(), 64);
    assert_eq!(
        report.completed() + report.rejected(),
        64,
        "every session accounted: {}",
        report.render()
    );
    assert_eq!(report.registry.compiles, 1);
}

#[test]
fn traces_are_byte_identical_solo_and_alongside_sixteen_peers() {
    fn run(cfg: ServeConfig, spec: &str) -> rqp_serve::ServeReport {
        let entries = parse_session_file(spec).unwrap();
        serve_workload(cfg, &entries).unwrap()
    }
    let quiet = FaultConfig::quiet(3);
    let solo = run(
        ServeConfig {
            workers: 1,
            queue_cap: 4,
            keep_traces: true,
            chaos: Some(quiet),
            ..ServeConfig::default()
        },
        "2D_Q91 sb x1",
    );
    assert_eq!(solo.completed(), 1);
    let reference = solo.results[0].trace_render.clone().unwrap();

    let crowded = run(
        ServeConfig {
            workers: 8,
            queue_cap: 32,
            keep_traces: true,
            chaos: Some(quiet),
            ..ServeConfig::default()
        },
        "2D_Q91 sb x8\n3D_Q15 ab x4\nJOB_Q1a pb x4\n",
    );
    assert_eq!(crowded.completed(), 16, "{}", crowded.render());
    let probes: Vec<&String> = crowded
        .results
        .iter()
        .filter(|r| r.query == "2D_Q91" && r.algo == "sb")
        .map(|r| r.trace_render.as_ref().unwrap())
        .collect();
    assert_eq!(probes.len(), 8);
    for render in probes {
        assert_eq!(
            render, &reference,
            "a session's trace must not depend on its 16 concurrent peers"
        );
    }
}

#[test]
fn lazy_serving_single_flights_the_anchors_and_matches_eager_costs() {
    let entries = parse_session_file("2D_Q91 sb x8\n").unwrap();
    let eager = serve_workload(
        ServeConfig { workers: 4, queue_cap: 16, keep_traces: true, ..ServeConfig::default() },
        &entries,
    )
    .unwrap();
    let lazy = serve_workload(
        ServeConfig {
            workers: 4,
            queue_cap: 16,
            keep_traces: true,
            lazy: true,
            ..ServeConfig::default()
        },
        &entries,
    )
    .unwrap();
    assert_eq!(eager.completed(), 8, "{}", eager.render());
    assert_eq!(lazy.completed(), 8, "{}", lazy.render());
    assert_eq!(lazy.registry.compiles, 1, "one anchor-only begin for one fingerprint");
    let shared = lazy.count(|r| matches!(r.lookup, Some(Lookup::Hit) | Some(Lookup::Waited)));
    assert_eq!(shared, 7, "every peer rode the shared anytime surface");
    // Plan ids are surface-relative (flood order vs cell-index order), so
    // traces are compared numerically across modes: identical accounted
    // costs, executions and suboptimality — and bitwise among lazy peers,
    // who share one frontier.
    let e0 = &eager.results[0];
    let reference = lazy.results[0].trace_render.as_ref().unwrap();
    for r in &lazy.results {
        assert_eq!(r.subopt, e0.subopt, "lazy serving must not change suboptimality");
        assert_eq!(r.steps, e0.steps);
        assert_eq!(r.total_cost, e0.total_cost);
        assert_eq!(
            r.trace_render.as_ref().unwrap(),
            reference,
            "peers on one shared frontier must trace identically"
        );
    }
}

#[test]
fn storm_chaos_hits_sessions_but_never_poisons_the_shared_registry() {
    let entries = parse_session_file("2D_Q91 sb x8\n2D_Q91 pb x8\n").unwrap();
    let report = serve_workload(
        ServeConfig {
            workers: 8,
            queue_cap: 16,
            chaos: Some(FaultConfig::storm(9, 0.5)),
            ..ServeConfig::default()
        },
        &entries,
    )
    .unwrap();
    // The bouquet family is supervised: storms slow sessions down but
    // cannot make them fail, and the shared surface stays intact (one
    // compile, finite suboptimality everywhere).
    assert_eq!(report.completed(), 16, "{}", report.render());
    assert_eq!(report.registry.compiles, 1);
    assert_eq!(report.non_finite_subopts(), 0);
    for r in &report.results {
        assert_eq!(r.outcome, SessionOutcome::Completed, "session {} ended {:?}", r.id, r.outcome);
    }
}
