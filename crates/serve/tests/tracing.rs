//! End-to-end causal-tracing tests over a traced serve run: span nesting
//! (session → compile/wait → step → execution), Chrome-export round-trip
//! through the obs JSON codec, cost accounting (Σ execution `spent` ==
//! session `total_cost`), and the live telemetry endpoint answering
//! `/metrics` while sessions are still in flight.

use rqp_obs::{chrome_trace_json, names, JsonValue, SpanKind, SpanRecord};
use rqp_serve::{serve_workload, ServeConfig, Server, SessionSpec};
use rqp_workloads::parse_session_file;
use std::io::{Read, Write};
use std::net::TcpStream;

fn traced_report(spec: &str, workers: usize) -> rqp_serve::ServeReport {
    let entries = parse_session_file(spec).unwrap();
    serve_workload(
        ServeConfig { workers, queue_cap: 64, tracing: true, ..ServeConfig::default() },
        &entries,
    )
    .unwrap()
}

fn find<'a>(spans: &'a [SpanRecord], kind: SpanKind) -> Vec<&'a SpanRecord> {
    spans.iter().filter(|s| s.kind == kind).collect()
}

#[test]
fn traced_sessions_nest_compile_wait_step_and_execution_under_the_session() {
    let report = traced_report("2D_Q91 sb x8\n", 8);
    assert_eq!(report.completed(), 8, "{}", report.render());

    let mut saw_compile = 0u64;
    let mut saw_wait = 0u64;
    for r in &report.results {
        assert!(!r.spans.is_empty(), "tracing on: session {} must carry spans", r.id);
        let sessions = find(&r.spans, SpanKind::Session);
        assert_eq!(sessions.len(), 1, "one root session span per session");
        let root = sessions[0];
        assert_eq!(root.parent_id, None);
        assert_eq!(root.name, names::SPAN_SESSION);
        assert_eq!(root.lane, r.id as u64, "lane is the session id");

        // Every recorded span belongs to this trace, and every non-root
        // span's parent exists within it.
        for s in &r.spans {
            assert_eq!(s.trace_id, root.trace_id);
            if let Some(p) = s.parent_id {
                assert!(
                    r.spans.iter().any(|c| c.span_id == p),
                    "span {} ({}) has dangling parent {p}",
                    s.span_id,
                    s.name
                );
            } else {
                assert_eq!(s.span_id, root.span_id, "only the session span is a root");
            }
        }

        // Compile or wait sits directly under the session span.
        for c in find(&r.spans, SpanKind::Compile) {
            saw_compile += 1;
            assert_eq!(c.parent_id, Some(root.span_id));
            assert_eq!(c.name, names::SPAN_ESS_COMPILE);
        }
        for w in find(&r.spans, SpanKind::Wait) {
            saw_wait += 1;
            assert_eq!(w.parent_id, Some(root.span_id));
            assert_eq!(w.name, names::SPAN_REGISTRY_WAIT);
        }

        // Every execution span hangs off a discovery step span.
        let execs = find(&r.spans, SpanKind::Execution);
        assert!(!execs.is_empty(), "session {} ran no executions?", r.id);
        for e in &execs {
            let parent = e.parent_id.and_then(|p| r.spans.iter().find(|s| s.span_id == p));
            let parent = parent.unwrap_or_else(|| panic!("execution span without parent"));
            assert_eq!(parent.kind, SpanKind::Step, "execution nests under a step");
        }
    }
    assert_eq!(saw_compile, 1, "single-flight: exactly one compile span across the run");
    assert!(saw_wait >= 1, "8 simultaneous sessions on one fingerprint must produce a wait span");
}

#[test]
fn execution_span_spent_sums_to_the_session_total_cost() {
    let report = traced_report("2D_Q91 sb x2\n3D_Q15 pb x2\n", 4);
    assert_eq!(report.completed(), 4, "{}", report.render());
    for r in &report.results {
        let root = find(&r.spans, SpanKind::Session)[0];
        let total = root.attr_f64("total_cost").expect("session span carries total_cost");
        let spent: f64 =
            find(&r.spans, SpanKind::Execution).iter().filter_map(|e| e.attr_f64("spent")).sum();
        let err = (spent - total).abs() / total.max(1.0);
        assert!(
            err < 1e-9,
            "session {}: Σ execution spent {spent} != session total_cost {total}",
            r.id
        );
        assert_eq!(Some(total), r.total_cost, "result and span agree on the total");
    }
}

#[test]
fn chrome_export_round_trips_through_the_obs_codec() {
    let report = traced_report("2D_Q91 sb x2\n", 2);
    let traces: Vec<Vec<SpanRecord>> = report.results.iter().map(|r| r.spans.clone()).collect();
    let doc = rqp_obs::chrome_trace_json_multi(&traces);
    let text = doc.to_json_pretty();
    let parsed = rqp_obs::json::parse(&text).expect("exporter output must reparse");
    let JsonValue::Object(obj) = &parsed else { panic!("expected object") };
    let JsonValue::Array(events) = &obj["traceEvents"] else { panic!("expected traceEvents") };
    let total_spans: usize = traces.iter().map(Vec::len).sum();
    assert_eq!(events.len(), total_spans);
    // Events carry the causal triple in args and a per-session lane.
    let mut lanes = std::collections::BTreeSet::new();
    for ev in events {
        let JsonValue::Object(ev) = ev else { panic!("expected event object") };
        assert_eq!(ev["ph"], JsonValue::Str("X".to_owned()));
        let JsonValue::Object(args) = &ev["args"] else { panic!("expected args") };
        assert!(args.contains_key("trace_id") && args.contains_key("span_id"));
        lanes.insert(format!("{:?}", ev["tid"]));
    }
    assert_eq!(lanes.len(), 2, "one Chrome lane per session");
}

#[test]
fn trace_ids_are_deterministic_across_runs() {
    let a = traced_report("2D_Q91 sb x2\n", 2);
    let b = traced_report("2D_Q91 sb x2\n", 2);
    for (ra, rb) in a.results.iter().zip(&b.results) {
        assert_eq!(ra.id, rb.id);
        let ta = find(&ra.spans, SpanKind::Session)[0].trace_id;
        let tb = find(&rb.spans, SpanKind::Session)[0].trace_id;
        assert_eq!(ta, tb, "same (query, algo, id) must derive the same trace id");
    }
    let t0 = find(&a.results[0].spans, SpanKind::Session)[0].trace_id;
    let t1 = find(&a.results[1].spans, SpanKind::Session)[0].trace_id;
    assert_ne!(t0, t1, "distinct sessions get distinct trace ids");
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes()).unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

#[test]
fn metrics_endpoint_answers_while_sessions_are_in_flight() {
    let server = Server::start(ServeConfig {
        workers: 2,
        queue_cap: 64,
        tracing: true,
        telemetry_addr: Some("127.0.0.1:0".to_string()),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.telemetry_addr().expect("telemetry endpoint is live");
    for id in 0..8 {
        server.submit(SessionSpec::new(id, "2D_Q91", "sb")).unwrap();
    }
    // Sessions are still compiling/running: the endpoint must answer now.
    let metrics = http_get(addr, "/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200"), "{metrics}");
    assert!(metrics.contains("# TYPE"), "prometheus text exposition: {metrics}");
    let health = http_get(addr, "/healthz");
    assert!(health.contains("\r\n\r\nok\n"), "{health}");
    assert!(health.contains("breakers:"), "health carries the breaker summary: {health}");

    let report = server.drain();
    assert_eq!(report.completed(), 8, "{}", report.render());
    // After the drain the endpoint is down; the traces live in the results.
    assert!(TcpStream::connect(addr).is_err(), "telemetry must stop with the server");
    let rendered = chrome_trace_json(&report.results[0].spans).to_json_pretty();
    assert!(rqp_obs::json::parse(&rendered).is_ok());
}
