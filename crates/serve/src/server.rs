//! The serving scheduler: a bounded admission queue in front of a pool of
//! OS worker threads, all sharing one [`EssRegistry`].
//!
//! Admission is **non-blocking by contract**: [`Server::submit`] either
//! enqueues the session or returns [`RqpError::Overloaded`] immediately.
//! Backpressure is therefore visible to the caller as a structured error
//! (to be retried after backoff) instead of an invisible stall — the
//! serving-side analogue of the paper's "no silent worst case" stance.
//!
//! Shutdown is a graceful drain: [`Server::drain`] closes the queue,
//! lets the workers finish every already-admitted session, and only then
//! joins them. Sessions admitted before the close are never dropped.

use crate::obs::metrics;
use crate::registry::{BreakerConfig, EssRegistry};
use crate::report::ServeReport;
use crate::session::{algo_by_name, SessionOutcome, SessionResult, SessionSpec};
use rqp_catalog::{Estimator, RqpError, RqpResult};
use rqp_chaos::{CompileFaultConfig, CompileFaultPlan, FaultConfig, FaultPlan};
use rqp_core::RobustRuntime;
use rqp_ess::{compile_fingerprint, CompileCache, Ess, EssConfig, Grid};
use rqp_executor::Engine;
use rqp_obs::{names, Deadline};
use rqp_optimizer::Optimizer;
use rqp_qplan::CostModel;
use rqp_workloads::Workload;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Tuning for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing sessions (≥ 1).
    pub workers: usize,
    /// Admission-queue capacity; a submit beyond this is refused with
    /// [`RqpError::Overloaded`] (≥ 1).
    pub queue_cap: usize,
    /// ESS grid resolution override; `None` uses the coarse default for
    /// each query's dimensionality.
    pub resolution: Option<usize>,
    /// Per-session wall-clock deadline, measured from admission. A
    /// session past its deadline is failed, not silently run.
    pub deadline: Option<Duration>,
    /// Cap on accounted suboptimality; a discovery spending more ends in
    /// [`SessionOutcome::OverBudget`].
    pub budget_cap: Option<f64>,
    /// Base fault schedule injected into every session (chaos serving).
    /// Each session mixes its own seed in, so schedules are independent.
    pub chaos: Option<FaultConfig>,
    /// Keep each session's rendered discovery trace in its result.
    pub keep_traces: bool,
    /// Directory for the persistent compile cache shared by the registry
    /// (`None` = in-memory registry only).
    pub cache_dir: Option<PathBuf>,
    /// Lock shards in the registry.
    pub registry_shards: usize,
    /// Record a causal trace per session (admission → compile/wait →
    /// contour → execution spans); results carry their spans and finished
    /// traces are published to the trace store.
    pub tracing: bool,
    /// Bind address for the live telemetry endpoint (`/metrics`,
    /// `/healthz`, `/trace/<session>`); `None` disables it.
    pub telemetry_addr: Option<String>,
    /// How long one telemetry connection may take to deliver its request
    /// head before being cut off (slow-loris guard; was hardcoded 500 ms).
    pub telemetry_read_timeout: Duration,
    /// Circuit-breaker tuning for the shared registry (backoff window per
    /// consecutive compile failure).
    pub breaker: BreakerConfig,
    /// Compile-seam fault schedule for the registry (chaos drills):
    /// seeded compile panics/failures, slow IO and cache corruption.
    pub compile_chaos: Option<CompileFaultConfig>,
    /// Serve sessions whose fingerprint breaker is open with the native
    /// optimizer's plan (no ESS, no robustness guarantee) instead of
    /// refusing them — the answer is flagged [`SessionOutcome::Degraded`].
    pub degrade: bool,
    /// Serve sessions from lazy anytime surfaces: the registry publishes
    /// a shared [`rqp_ess::LazyEss`] after costing only the ladder
    /// anchors, and each session materializes just the contour bands its
    /// discovery reaches. Cold-start sessions run orders of magnitude
    /// sooner; surfaces finish on demand if an eager consumer asks.
    pub lazy: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_cap: 64,
            resolution: None,
            deadline: None,
            budget_cap: None,
            chaos: None,
            keep_traces: false,
            cache_dir: None,
            registry_shards: 8,
            tracing: false,
            telemetry_addr: None,
            telemetry_read_timeout: Duration::from_millis(500),
            breaker: BreakerConfig::default(),
            compile_chaos: None,
            degrade: false,
            lazy: false,
        }
    }
}

/// Live notifications a transport can subscribe to by submitting through
/// [`Server::submit_with`]. The TCP wire layer streams these to the
/// client as progress frames; in-proc callers normally pass no sink and
/// read everything from the drained [`ServeReport`].
#[derive(Debug, Clone)]
pub enum SessionUpdate {
    /// The session left the queue and started executing on a worker.
    Started {
        /// Session id.
        id: usize,
    },
    /// The registry lookup resolved — the session has its surface.
    Surface {
        /// Session id.
        id: usize,
        /// How the lookup resolved (compiled / hit / waited / restored).
        lookup: crate::registry::Lookup,
    },
    /// One discovery execution from the session's trace.
    Step {
        /// Session id.
        id: usize,
        /// Step index within the trace.
        step: usize,
        /// Cost budget granted to this execution.
        budget: f64,
        /// Cost actually spent.
        spent: f64,
        /// Whether the execution ran to completion (vs. budget kill).
        completed: bool,
    },
    /// Terminal: the session's full result (also in the drain report).
    Finished(Box<SessionResult>),
}

/// Where [`Server::submit_with`] delivers a session's live updates.
pub type UpdateSink = std::sync::mpsc::Sender<SessionUpdate>;

/// Send a live update, ignoring a hung-up receiver: the transport
/// connection owning the sink is gone, and the session result still lands
/// in the drain report.
fn notify(sink: Option<&UpdateSink>, update: impl FnOnce() -> SessionUpdate) {
    if let Some(sink) = sink {
        sink.send(update()).ok();
    }
}

struct Queued {
    spec: SessionSpec,
    admitted_at: Instant,
    sink: Option<UpdateSink>,
}

struct QueueState {
    queue: VecDeque<Queued>,
    closed: bool,
}

struct Inner {
    config: ServeConfig,
    registry: EssRegistry,
    state: Mutex<QueueState>,
    work_ready: Condvar,
    results: Mutex<Vec<SessionResult>>,
    active: std::sync::atomic::AtomicUsize,
    /// Finished-session Chrome traces, shared with the telemetry endpoint.
    traces: Arc<crate::telemetry::TraceStore>,
}

impl Inner {
    fn lock_state(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A running serving instance: admission queue, worker pool, shared
/// registry.
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
    started_at: Instant,
    telemetry: Option<crate::telemetry::TelemetryServer>,
}

impl Server {
    /// Validate the config, build the shared registry, and spawn the
    /// worker pool.
    ///
    /// # Errors
    /// [`RqpError::Config`] on a zero worker/queue size or an unusable
    /// cache directory; [`RqpError::Internal`] if the OS refuses to spawn
    /// a thread.
    pub fn start(config: ServeConfig) -> RqpResult<Server> {
        if config.workers == 0 {
            return Err(RqpError::Config("serve needs at least one worker".to_string()));
        }
        if config.queue_cap == 0 {
            return Err(RqpError::Config("serve queue capacity must be at least 1".to_string()));
        }
        crate::obs::register_metrics();
        let mut registry = EssRegistry::new(config.registry_shards).with_breaker(config.breaker);
        if let Some(dir) = &config.cache_dir {
            registry = registry.with_cache(CompileCache::new(dir.clone())?);
        }
        if let Some(chaos) = config.compile_chaos {
            registry = registry.with_compile_injector(Arc::new(CompileFaultPlan::new(chaos)));
        }
        let inner = Arc::new(Inner {
            registry,
            state: Mutex::new(QueueState { queue: VecDeque::new(), closed: false }),
            work_ready: Condvar::new(),
            results: Mutex::new(Vec::new()),
            active: std::sync::atomic::AtomicUsize::new(0),
            traces: Arc::new(crate::telemetry::TraceStore::new()),
            config,
        });
        let telemetry = match &inner.config.telemetry_addr {
            Some(addr) => {
                // The health closure keeps an `Arc<Inner>` alive for the
                // telemetry thread's lifetime; `drain` stops that thread
                // before the server is dropped, so no cycle survives.
                let health_inner = Arc::clone(&inner);
                let health: crate::telemetry::HealthSource =
                    Arc::new(move || breaker_health(&health_inner.registry));
                Some(crate::telemetry::TelemetryServer::start(
                    addr,
                    Arc::clone(&inner.traces),
                    Some(health),
                    inner.config.telemetry_read_timeout,
                )?)
            }
            None => None,
        };
        let mut workers = Vec::with_capacity(inner.config.workers);
        for i in 0..inner.config.workers {
            let inner = Arc::clone(&inner);
            let handle = std::thread::Builder::new()
                .name(format!("rqp-serve-{i}"))
                .spawn(move || worker_loop(&inner))
                .map_err(|e| RqpError::Internal(format!("cannot spawn serve worker: {e}")))?;
            workers.push(handle);
        }
        Ok(Server { inner, workers, started_at: Instant::now(), telemetry })
    }

    /// Admit a session, or refuse it immediately if the queue is full.
    ///
    /// # Errors
    /// [`RqpError::Overloaded`] (queue at capacity) or
    /// [`RqpError::Config`] (server already draining). Neither blocks.
    pub fn submit(&self, spec: SessionSpec) -> RqpResult<()> {
        self.submit_with(spec, None)
    }

    /// [`submit`](Self::submit), plus a live [`SessionUpdate`] sink the
    /// worker notifies as the session progresses (started → surface →
    /// per-step → finished). The wire transport uses one sink per
    /// connection to stream progress frames.
    ///
    /// # Errors
    /// Same contract as [`submit`](Self::submit).
    pub fn submit_with(&self, spec: SessionSpec, sink: Option<UpdateSink>) -> RqpResult<()> {
        let m = metrics();
        let mut st = self.inner.lock_state();
        if st.closed {
            return Err(RqpError::Config("server is draining; no new sessions".to_string()));
        }
        if st.queue.len() >= self.inner.config.queue_cap {
            let (depth, cap) = (st.queue.len(), self.inner.config.queue_cap);
            drop(st);
            m.rejected.inc();
            if rqp_obs::events_enabled() {
                rqp_obs::emit(
                    rqp_obs::Event::new(names::EV_SESSION_REJECTED)
                        .with("session", spec.id as u64)
                        .with("query", spec.query.as_str())
                        .with("queue_depth", depth as u64)
                        .with("cap", cap as u64),
                );
            }
            return Err(RqpError::Overloaded { queue_depth: depth, cap });
        }
        m.admitted.inc();
        if rqp_obs::events_enabled() {
            rqp_obs::emit(
                rqp_obs::Event::new(names::EV_SESSION_ADMITTED)
                    .with("session", spec.id as u64)
                    .with("query", spec.query.as_str())
                    .with("algo", spec.algo.as_str()),
            );
        }
        st.queue.push_back(Queued { spec, admitted_at: Instant::now(), sink });
        m.queue_depth.set(st.queue.len() as f64);
        drop(st);
        self.inner.work_ready.notify_one();
        Ok(())
    }

    /// Sessions currently waiting for a worker.
    pub fn queue_depth(&self) -> usize {
        self.inner.lock_state().queue.len()
    }

    /// The shared registry's lifetime counters.
    pub fn registry_stats(&self) -> crate::registry::RegistryStats {
        self.inner.registry.stats()
    }

    /// Wipe the in-memory registry (the crash-recovery drill's simulated
    /// process restart). With a cache directory configured, subsequent
    /// sessions restore from the disk tier with zero recompiles.
    pub fn wipe_registry(&self) {
        self.inner.registry.wipe();
    }

    /// Every fingerprint's current circuit-breaker phase (see
    /// [`EssRegistry::breaker_states`]).
    pub fn breaker_states(&self) -> Vec<crate::registry::BreakerState> {
        self.inner.registry.breaker_states()
    }

    /// The ordered breaker transition log (see
    /// [`EssRegistry::breaker_transitions`]).
    pub fn breaker_transitions(&self) -> Vec<crate::registry::BreakerTransition> {
        self.inner.registry.breaker_transitions()
    }

    /// The telemetry endpoint's bound address (`None` when disabled).
    /// With `telemetry_addr` set to port 0, this reveals the chosen port.
    pub fn telemetry_addr(&self) -> Option<std::net::SocketAddr> {
        self.telemetry.as_ref().map(crate::telemetry::TelemetryServer::local_addr)
    }

    /// Close the queue, let the workers finish every admitted session,
    /// join them, and summarize the run.
    pub fn drain(self) -> ServeReport {
        let m = metrics();
        let drained = {
            let mut st = self.inner.lock_state();
            st.closed = true;
            st.queue.len()
        };
        m.drained.add(drained as u64);
        self.inner.work_ready.notify_all();
        for handle in self.workers {
            // A worker that panicked already published what it could; the
            // drain still returns every recorded result.
            let _ = handle.join();
        }
        if let Some(telemetry) = self.telemetry {
            // rqp-lint: allow(swallowed-result): TelemetryServer::stop returns (); the name pools with the fallible TcpServeHost::stop
            telemetry.stop();
        }
        let results =
            std::mem::take(&mut *self.inner.results.lock().unwrap_or_else(PoisonError::into_inner));
        let report = ServeReport {
            results,
            registry: self.inner.registry.stats(),
            drained,
            wall: self.started_at.elapsed(),
        };
        if rqp_obs::events_enabled() {
            rqp_obs::emit(
                rqp_obs::Event::new(names::EV_SERVE_DRAIN)
                    .with("completed", report.count(|r| r.outcome == SessionOutcome::Completed))
                    .with("failed", report.count(|r| r.outcome != SessionOutcome::Completed))
                    .with("drained", drained as u64)
                    .with("seconds", report.wall.as_secs_f64()),
            );
        }
        report
    }
}

fn worker_loop(inner: &Inner) {
    let m = metrics();
    loop {
        let queued = {
            let mut st = inner.lock_state();
            loop {
                if let Some(q) = st.queue.pop_front() {
                    m.queue_depth.set(st.queue.len() as f64);
                    break Some(q);
                }
                if st.closed {
                    break None;
                }
                st = inner.work_ready.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(queued) = queued else { return };
        use std::sync::atomic::Ordering;
        let sink = queued.sink.clone();
        notify(sink.as_ref(), || SessionUpdate::Started { id: queued.spec.id });
        m.sessions_active.set((inner.active.fetch_add(1, Ordering::Relaxed) + 1) as f64);
        let result = run_session(inner, queued);
        m.sessions_active.set((inner.active.fetch_sub(1, Ordering::Relaxed) - 1) as f64);
        m.session_seconds.observe(result.wall.as_secs_f64());
        match result.outcome {
            SessionOutcome::Completed => m.completed.inc(),
            // degraded sessions produced an answer; run_degraded counted
            // them in rqp_serve_degraded_total already
            SessionOutcome::Degraded => {}
            _ => m.failed.inc(),
        }
        if rqp_obs::events_enabled() {
            let mut ev = rqp_obs::Event::new(names::EV_SESSION_COMPLETE)
                .with("session", result.id as u64)
                .with("query", result.query.as_str())
                .with("algo", result.algo.as_str())
                .with("outcome", result.outcome.label())
                .with("seconds", result.wall.as_secs_f64());
            if let Some(s) = result.subopt {
                ev = ev.with("subopt", s);
            }
            rqp_obs::emit(ev);
        }
        inner.results.lock().unwrap_or_else(PoisonError::into_inner).push(result.clone());
        notify(sink.as_ref(), || SessionUpdate::Finished(Box::new(result)));
    }
}

/// Render the registry's circuit-breaker summary for `/healthz`: one
/// aggregate line plus one line per non-closed fingerprint, appended
/// after the `ok` liveness line.
fn breaker_health(registry: &EssRegistry) -> String {
    use crate::registry::BreakerPhase;
    use std::fmt::Write as _;
    let states = registry.breaker_states();
    let open = states.iter().filter(|s| s.phase == BreakerPhase::Open).count();
    let half = states.iter().filter(|s| s.phase == BreakerPhase::HalfOpen).count();
    let mut s = String::new();
    let _ =
        writeln!(s, "breakers: {} fingerprint(s), {} open, {} half_open", states.len(), open, half);
    for st in states.iter().filter(|s| s.phase != BreakerPhase::Closed) {
        let _ = writeln!(
            s,
            "breaker fp={:016x} phase={} failures={}",
            st.fp,
            st.phase.label(),
            st.failures
        );
    }
    s
}

/// FNV-1a, the deterministic seed for session trace ids.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Wrap one session in its causal trace: derive the deterministic trace
/// id, install the tracer on this worker thread, open the root session
/// span, run the session, and collect the spans into the result (and the
/// shared trace store for the telemetry endpoint).
fn run_session(inner: &Inner, queued: Queued) -> SessionResult {
    let spec = &queued.spec;
    let tracer = if inner.config.tracing {
        // deterministic: same (query, algo, id) → same trace id across runs
        let trace_id = fnv1a(spec.query.as_bytes())
            ^ fnv1a(spec.algo.as_bytes()).rotate_left(17)
            ^ spec.id as u64;
        rqp_obs::Tracer::new(trace_id, spec.id as u64)
    } else {
        rqp_obs::Tracer::disabled()
    };
    let scope = rqp_obs::install(tracer.clone());
    let mut session_span = tracer.span(names::SPAN_SESSION, rqp_obs::SpanKind::Session);
    session_span.attr("session", spec.id as u64);
    session_span.attr("query", spec.query.as_str());
    session_span.attr("algo", spec.algo.as_str());
    let mut result = run_session_inner(inner, queued);
    session_span.attr("outcome", result.outcome.label());
    if let Some(total) = result.total_cost {
        session_span.attr("total_cost", total);
    }
    if let Some(s) = result.subopt {
        session_span.attr("subopt", s);
    }
    drop(session_span);
    drop(scope);
    if tracer.is_enabled() {
        result.spans = tracer.spans();
        inner.traces.insert(result.id, rqp_obs::chrome_trace_json(&result.spans).to_json_pretty());
    }
    result
}

/// Execute one admitted session end to end: resolve the workload, fetch
/// (or single-flight compile) the shared ESS, admit a runtime against it,
/// attach the session's fault schedule, and run discovery.
fn run_session_inner(inner: &Inner, queued: Queued) -> SessionResult {
    let Queued { spec, admitted_at, sink } = queued;
    let algo_token = spec.algo.to_ascii_lowercase();
    let mut result = SessionResult {
        id: spec.id,
        query: spec.query.clone(),
        algo: algo_token,
        outcome: SessionOutcome::Completed,
        subopt: None,
        steps: 0,
        wall: Duration::ZERO,
        lookup: None,
        trace_render: None,
        total_cost: None,
        spans: Vec::new(),
    };
    let finish = |mut r: SessionResult, outcome: SessionOutcome| {
        r.outcome = outcome;
        r.wall = admitted_at.elapsed();
        r
    };
    let past_deadline = || inner.config.deadline.is_some_and(|d| admitted_at.elapsed() > d);
    if past_deadline() {
        return finish(result, SessionOutcome::DeadlineExpired);
    }
    let algo = match algo_by_name(&spec.algo) {
        Ok(a) => a,
        Err(e) => return finish(result, SessionOutcome::Failed(e.to_string())),
    };
    let w = match Workload::by_name(&spec.query) {
        Ok(w) => w,
        Err(e) => return finish(result, SessionOutcome::Failed(e.to_string())),
    };
    let model = CostModel::default();
    let mut cfg = EssConfig::coarse(w.query.dims());
    if let Some(r) = inner.config.resolution {
        cfg.resolution = r;
    }
    // The session deadline, anchored at admission: it bounds the registry
    // wait (timed condvar), the supervised retries, and the final check
    // below. `None` config → an unbounded deadline that never lapses.
    let deadline = inner
        .config
        .deadline
        .and_then(|d| admitted_at.checked_add(d))
        .map_or(Deadline::none(), Deadline::at);
    let fp = compile_fingerprint(&w.catalog, &w.query, &model, &cfg);
    // The compile can carry an injected panic (chaos schedules); the
    // registry's drop guard turns that into an open breaker, and the
    // catch here keeps the worker thread alive to serve the next session.
    let lookup = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if inner.config.lazy {
            // Anytime serving: publish after the ladder anchors only;
            // this session (and its peers) pull bands on demand.
            inner.registry.get_or_lazy(fp, deadline, || {
                rqp_ess::LazyEss::begin(&w.catalog, &w.query, model, cfg)
            })
        } else {
            inner
                .registry
                .get_or_compile(fp, deadline, || {
                    let optimizer = Optimizer::new(&w.catalog, &w.query, model);
                    Ess::compile(&optimizer, cfg)
                })
                .map(|(ess, how)| (crate::registry::SharedSurface::Eager(ess), how))
        }
    }))
    .unwrap_or_else(|_| {
        Err(RqpError::Internal("ESS compile panicked; breaker opened".to_string()))
    });
    let (surface, how) = match lookup {
        Ok(pair) => pair,
        Err(RqpError::DeadlineExpired { .. }) => {
            return finish(result, SessionOutcome::DeadlineExpired)
        }
        Err(e @ RqpError::BreakerOpen { .. }) => {
            if inner.config.degrade {
                return run_degraded(&w, model, &cfg, &spec, result, finish);
            }
            return finish(result, SessionOutcome::BreakerOpen(e.to_string()));
        }
        Err(e) => return finish(result, SessionOutcome::Failed(e.to_string())),
    };
    result.lookup = Some(how);
    notify(sink.as_ref(), || SessionUpdate::Surface { id: spec.id, lookup: how });
    let rt = match surface {
        crate::registry::SharedSurface::Eager(ess) => {
            RobustRuntime::with_shared_ess(&w.catalog, &w.query, model, ess)
        }
        crate::registry::SharedSurface::Lazy(lazy) => {
            RobustRuntime::with_shared_lazy(&w.catalog, &w.query, model, lazy)
        }
    };
    let mut rt = match rt {
        Ok(rt) => rt,
        Err(e) => return finish(result, SessionOutcome::Failed(e.to_string())),
    };
    rt.set_deadline(deadline);
    let plan = inner.config.chaos.map(|base| {
        let mut fc = base;
        fc.seed = fc.seed.wrapping_add(spec.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        FaultPlan::new(fc)
    });
    if let Some(plan) = &plan {
        rt.set_fault_injector(plan);
    }
    let cells = rt.grid().num_cells();
    let qa = match crate::session::resolve_qa(spec.qa, cells) {
        Ok(qa) => qa,
        Err(e) => {
            metrics().invalid_spec.inc();
            return finish(result, SessionOutcome::InvalidSpec(e.to_string()));
        }
    };
    let trace = algo.discover(&rt, qa);
    // Stream the discovery steps to a live transport before the terminal
    // result frame. The steps come off the finished trace (the executor
    // seam has no mid-run tap yet), so remote and local observers see the
    // identical step sequence.
    if let Some(sink) = &sink {
        for (i, step) in trace.steps.iter().enumerate() {
            sink.send(SessionUpdate::Step {
                id: spec.id,
                step: i,
                budget: step.budget,
                spent: step.spent,
                completed: step.completed,
            })
            .ok();
        }
    }
    result.subopt = Some(trace.subopt());
    result.steps = trace.num_executions();
    result.total_cost = Some(trace.total_cost);
    if inner.config.keep_traces {
        result.trace_render = Some(trace.render());
    }
    if let Some(reason) = trace.failure {
        return finish(result, SessionOutcome::Failed(reason));
    }
    if past_deadline() {
        return finish(result, SessionOutcome::DeadlineExpired);
    }
    if inner.config.budget_cap.is_some_and(|cap| trace.total_cost > cap * trace.oracle_cost) {
        return finish(result, SessionOutcome::OverBudget);
    }
    finish(result, SessionOutcome::Completed)
}

/// Graceful degradation when the fingerprint's breaker is open: serve the
/// session the way a traditional engine would — the native optimizer's
/// plan at the estimated location, executed unbudgeted — instead of
/// refusing it. No ESS means no MSO guarantee; the outcome is flagged
/// [`SessionOutcome::Degraded`] and counted so the degradation is never
/// silent.
fn run_degraded<F>(
    w: &Workload,
    model: CostModel,
    cfg: &EssConfig,
    spec: &SessionSpec,
    mut result: SessionResult,
    finish: F,
) -> SessionResult
where
    F: FnOnce(SessionResult, SessionOutcome) -> SessionResult,
{
    // The ESS grid geometry without the ESS: enough to resolve the
    // session's qa cell to selectivities and cost the oracle plan there.
    let grid = match Grid::uniform(w.query.dims(), cfg.resolution, cfg.min_sel) {
        Ok(g) => g,
        Err(e) => return finish(result, SessionOutcome::Failed(e.to_string())),
    };
    let qe = match Estimator::new(&w.catalog).estimated_location(&w.query) {
        Ok(qe) => qe,
        Err(e) => return finish(result, SessionOutcome::Failed(e.to_string())),
    };
    let optimizer = Optimizer::new(&w.catalog, &w.query, model);
    let planned = optimizer.optimize(&qe);
    let cells = grid.num_cells();
    let qa = match crate::session::resolve_qa(spec.qa, cells) {
        Ok(qa) => qa,
        Err(e) => {
            metrics().invalid_spec.inc();
            return finish(result, SessionOutcome::InvalidSpec(e.to_string()));
        }
    };
    let qa_loc = grid.location(qa);
    let engine = Engine::new(&w.catalog, &w.query, model);
    let out = engine.execute_budgeted(&planned.plan, &qa_loc, f64::INFINITY);
    let oracle = optimizer.optimize(&qa_loc).cost;
    result.subopt = (oracle > 0.0).then(|| out.spent() / oracle);
    result.steps = 1;
    result.total_cost = Some(out.spent());
    metrics().degraded.inc();
    if rqp_obs::events_enabled() {
        rqp_obs::emit(
            rqp_obs::Event::new(names::EV_SESSION_DEGRADED)
                .with("session", spec.id as u64)
                .with("query", spec.query.as_str())
                .with("algo", spec.algo.as_str()),
        );
    }
    finish(result, SessionOutcome::Degraded)
}

/// Expand session-file entries into specs, submit them all, and drain.
///
/// Entries beyond the queue capacity are refused by admission control
/// (the structured [`RqpError::Overloaded`]) and recorded as
/// [`SessionOutcome::Rejected`] results — the driver never blocks on a
/// full queue and never silently drops a session.
///
/// # Errors
/// Propagates [`Server::start`] configuration errors; per-session
/// failures are reported in the [`ServeReport`], not as an `Err`.
pub fn serve_workload(
    config: ServeConfig,
    entries: &[rqp_workloads::SessionEntry],
) -> RqpResult<ServeReport> {
    let transport = Box::new(crate::transport::InProcTransport::start(config)?);
    crate::transport::run_entries(transport, entries)
}
