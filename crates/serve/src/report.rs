//! Aggregated serving results: session-level MSO/ASO over the shared
//! registry, plus throughput and latency percentiles.

use crate::registry::{Lookup, RegistryStats};
use crate::session::{SessionOutcome, SessionResult};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// Everything a drained [`crate::Server`] leaves behind.
#[derive(Debug)]
pub struct ServeReport {
    /// Every session's record, in session-id order after
    /// [`crate::serve_workload`] (worker completion order from a raw
    /// [`crate::Server::drain`]).
    pub results: Vec<SessionResult>,
    /// Shared-registry counters (compiles, hits, single-flight waits).
    pub registry: RegistryStats,
    /// Sessions that were still queued when the drain began (all finished
    /// gracefully before shutdown).
    pub drained: usize,
    /// Wall-clock from server start to the end of the drain.
    pub wall: Duration,
}

/// Session-level aggregate for one (query, algorithm) group.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupStats {
    /// Workload name.
    pub query: String,
    /// Algorithm token.
    pub algo: String,
    /// Sessions whose discovery produced a valid trace.
    pub sessions: usize,
    /// Worst accounted suboptimality across the group — the session-level
    /// MSO over the shared surface.
    pub mso: f64,
    /// Mean accounted suboptimality — the session-level ASO.
    pub aso: f64,
    /// Sessions served by the breaker-open degraded path (native plan, no
    /// ESS). Their suboptimality is excluded from the MSO/ASO columns —
    /// degraded answers carry no robustness guarantee to aggregate.
    pub degraded: usize,
    /// Sessions refused outright because the fingerprint's breaker was
    /// open and no degraded path was configured.
    pub breaker_open: usize,
}

impl ServeReport {
    /// Count sessions matching a predicate.
    pub fn count(&self, pred: impl Fn(&SessionResult) -> bool) -> u64 {
        self.results.iter().filter(|r| pred(r)).count() as u64
    }

    /// Sessions that completed cleanly.
    pub fn completed(&self) -> u64 {
        self.count(|r| r.outcome == SessionOutcome::Completed)
    }

    /// Sessions refused at admission.
    pub fn rejected(&self) -> u64 {
        self.count(|r| r.outcome == SessionOutcome::Rejected)
    }

    /// Sessions served by the breaker-open degraded path.
    pub fn degraded(&self) -> u64 {
        self.count(|r| r.outcome == SessionOutcome::Degraded)
    }

    /// Sessions refused because their fingerprint's breaker was open.
    pub fn breaker_refused(&self) -> u64 {
        self.count(|r| matches!(r.outcome, SessionOutcome::BreakerOpen(_)))
    }

    /// Sessions refused because the spec itself was invalid (e.g. an
    /// out-of-range `qa` cell) — refused before discovery, never clamped.
    pub fn invalid_specs(&self) -> u64 {
        self.count(|r| matches!(r.outcome, SessionOutcome::InvalidSpec(_)))
    }

    /// Sessions that ran discovery but reported a non-finite
    /// suboptimality (a corrupt trace; strict serving fails on any).
    pub fn non_finite_subopts(&self) -> u64 {
        self.count(|r| r.subopt.is_some_and(|s| !s.is_finite()))
    }

    /// Completed sessions per wall-clock second.
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.completed() as f64 / secs
        } else {
            0.0
        }
    }

    /// The `q`-th latency percentile (`0.0..=1.0`) over all sessions that
    /// reached a worker, or `None` when none did.
    pub fn latency_percentile(&self, q: f64) -> Option<Duration> {
        let mut walls: Vec<Duration> = self
            .results
            .iter()
            .filter(|r| r.outcome != SessionOutcome::Rejected)
            .map(|r| r.wall)
            .collect();
        if walls.is_empty() {
            return None;
        }
        walls.sort_unstable();
        let rank = ((q.clamp(0.0, 1.0) * walls.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(walls.len() - 1);
        Some(walls[rank])
    }

    /// Per-(query, algorithm) session-level MSO/ASO, in name order.
    /// Degraded and breaker-refused sessions are counted per group but
    /// kept out of the MSO/ASO aggregation.
    pub fn group_stats(&self) -> Vec<GroupStats> {
        #[derive(Default)]
        struct Acc {
            subopts: Vec<f64>,
            degraded: usize,
            breaker_open: usize,
        }
        let mut groups: BTreeMap<(String, String), Acc> = BTreeMap::new();
        for r in &self.results {
            let acc = groups.entry((r.query.clone(), r.algo.clone())).or_default();
            match &r.outcome {
                SessionOutcome::Degraded => acc.degraded += 1,
                SessionOutcome::BreakerOpen(_) => acc.breaker_open += 1,
                _ => {
                    if let Some(s) = r.subopt {
                        acc.subopts.push(s);
                    }
                }
            }
        }
        groups
            .into_iter()
            .filter(|(_, acc)| !acc.subopts.is_empty() || acc.degraded > 0 || acc.breaker_open > 0)
            .map(|((query, algo), acc)| {
                let n = acc.subopts.len();
                let mso = acc.subopts.iter().fold(0.0_f64, |a, &b| a.max(b));
                let aso = if n > 0 { acc.subopts.iter().sum::<f64>() / n as f64 } else { 0.0 };
                GroupStats {
                    query,
                    algo,
                    sessions: n,
                    mso,
                    aso,
                    degraded: acc.degraded,
                    breaker_open: acc.breaker_open,
                }
            })
            .collect()
    }

    /// Human-readable run summary.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "served {} session(s) in {:.2?}: {} completed, {} rejected, {} other, \
             {} drained at shutdown",
            self.results.len(),
            self.wall,
            self.completed(),
            self.rejected(),
            self.results.len() as u64 - self.completed() - self.rejected(),
            self.drained,
        );
        let _ = writeln!(
            s,
            "registry: {} compile(s), {} hit(s), {} single-flight wait(s) over {} fingerprint(s)",
            self.registry.compiles, self.registry.hits, self.registry.waits, self.registry.entries,
        );
        let waited = self.count(|r| r.lookup == Some(Lookup::Waited));
        let _ = writeln!(
            s,
            "throughput: {:.1} session(s)/s   ({} session(s) piggybacked on an in-flight compile)",
            self.throughput(),
            waited,
        );
        if let (Some(p50), Some(p95), Some(p99)) = (
            self.latency_percentile(0.50),
            self.latency_percentile(0.95),
            self.latency_percentile(0.99),
        ) {
            let _ = writeln!(s, "latency: p50 {:.2?}   p95 {:.2?}   p99 {:.2?}", p50, p95, p99);
        }
        if self.invalid_specs() > 0 {
            let _ = writeln!(s, "refused {} session(s) with invalid specs", self.invalid_specs());
        }
        if self.degraded() + self.breaker_refused() > 0 {
            let _ = writeln!(
                s,
                "resilience: {} degraded session(s), {} refused by an open breaker",
                self.degraded(),
                self.breaker_refused(),
            );
        }
        s.push_str(&self.group_table());
        s
    }

    fn group_table(&self) -> String {
        let mut s = String::new();
        let groups = self.group_stats();
        if !groups.is_empty() {
            let _ = writeln!(
                s,
                "{:<10} {:<7} {:>9} {:>9} {:>9} {:>9} {:>9}",
                "query", "algo", "sessions", "MSO", "ASO", "degraded", "brk_open"
            );
            for g in groups {
                let _ = writeln!(
                    s,
                    "{:<10} {:<7} {:>9} {:>9.2} {:>9.2} {:>9} {:>9}",
                    g.query, g.algo, g.sessions, g.mso, g.aso, g.degraded, g.breaker_open
                );
            }
        }
        s
    }

    /// A deterministic summary for drill comparisons: outcome counts and
    /// the per-group table, with everything wall-clock dependent (run
    /// duration, latency percentiles, throughput, lookup classes,
    /// registry counters) excluded. Two quiet runs of the same schedule
    /// render byte-identically — the crash-recovery drill's invariant.
    pub fn stable_render(&self) -> String {
        let mut s = String::new();
        let mut by_outcome: BTreeMap<&'static str, u64> = BTreeMap::new();
        for r in &self.results {
            *by_outcome.entry(r.outcome.label()).or_default() += 1;
        }
        let _ = writeln!(s, "sessions: {}", self.results.len());
        for (label, n) in by_outcome {
            let _ = writeln!(s, "outcome {label}: {n}");
        }
        s.push_str(&self.group_table());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(
        id: usize,
        algo: &str,
        outcome: SessionOutcome,
        subopt: Option<f64>,
    ) -> SessionResult {
        SessionResult {
            id,
            query: "2D_Q91".to_string(),
            algo: algo.to_string(),
            outcome,
            subopt,
            steps: 3,
            wall: Duration::from_millis(10 * (id as u64 + 1)),
            lookup: None,
            trace_render: None,
            total_cost: None,
            spans: Vec::new(),
        }
    }

    fn report(results: Vec<SessionResult>) -> ServeReport {
        ServeReport {
            results,
            registry: RegistryStats::default(),
            drained: 0,
            wall: Duration::from_secs(1),
        }
    }

    #[test]
    fn aggregates_mso_aso_and_percentiles() {
        let r = report(vec![
            result(0, "sb", SessionOutcome::Completed, Some(1.0)),
            result(1, "sb", SessionOutcome::Completed, Some(3.0)),
            result(2, "sb", SessionOutcome::Rejected, None),
        ]);
        let g = r.group_stats();
        assert_eq!(g.len(), 1);
        assert!((g[0].mso - 3.0).abs() < 1e-12);
        assert!((g[0].aso - 2.0).abs() < 1e-12);
        assert_eq!(g[0].sessions, 2);
        assert_eq!(r.completed(), 2);
        assert_eq!(r.rejected(), 1);
        // Two non-rejected sessions at 10ms and 20ms.
        assert_eq!(r.latency_percentile(0.5), Some(Duration::from_millis(10)));
        assert_eq!(r.latency_percentile(1.0), Some(Duration::from_millis(20)));
        assert!((r.throughput() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn latency_percentile_is_none_without_worker_sessions() {
        assert_eq!(report(vec![]).latency_percentile(0.5), None);
        // Rejected sessions never reached a worker; they don't count.
        let r = report(vec![result(0, "sb", SessionOutcome::Rejected, None)]);
        assert_eq!(r.latency_percentile(0.99), None);
    }

    #[test]
    fn latency_percentile_single_sample_answers_every_quantile() {
        let r = report(vec![result(0, "sb", SessionOutcome::Completed, Some(1.0))]);
        let only = Some(Duration::from_millis(10));
        for q in [0.0, 0.5, 0.95, 0.99, 1.0, -3.0, 7.0] {
            assert_eq!(r.latency_percentile(q), only, "q={q}");
        }
    }

    #[test]
    fn latency_percentile_exact_boundaries() {
        // 100 sessions with walls 10ms, 20ms, ..., 1000ms: the ceil-rank
        // definition puts p50 exactly at the 50th sample, p95 at the 95th,
        // p99 at the 99th.
        let results: Vec<SessionResult> =
            (0..100).map(|i| result(i, "sb", SessionOutcome::Completed, Some(1.0))).collect();
        let r = report(results);
        assert_eq!(r.latency_percentile(0.50), Some(Duration::from_millis(500)));
        assert_eq!(r.latency_percentile(0.95), Some(Duration::from_millis(950)));
        assert_eq!(r.latency_percentile(0.99), Some(Duration::from_millis(990)));
        assert_eq!(r.latency_percentile(0.0), Some(Duration::from_millis(10)));
        assert_eq!(r.latency_percentile(1.0), Some(Duration::from_millis(1000)));
    }

    #[test]
    fn flags_non_finite_subopts_and_renders() {
        let r = report(vec![
            result(0, "sb", SessionOutcome::Completed, Some(f64::INFINITY)),
            result(1, "ab", SessionOutcome::Completed, Some(1.5)),
        ]);
        assert_eq!(r.non_finite_subopts(), 1);
        let text = r.render();
        assert!(text.contains("served 2 session(s)"), "{text}");
        assert!(text.contains("MSO"), "{text}");
    }
}
