//! Session specifications and per-session results.

use rqp_catalog::{RqpError, RqpResult};
use rqp_core::{AlignedBound, Discovery, NativeOptimizer, PlanBouquet, ReOptimizer, SpillBound};
use rqp_ess::{compile_fingerprint, Cell, EssConfig};
use rqp_qplan::CostModel;
use rqp_workloads::Workload;
use std::time::Duration;

/// One unit of serving work: a named workload, a discovery algorithm, and
/// (optionally) where in the ESS the actual selectivities land.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSpec {
    /// Unique session id (assigned at submission).
    pub id: usize,
    /// Workload name, resolved via [`rqp_workloads::Workload::by_name`].
    pub query: String,
    /// Algorithm token (`sb` | `ab` | `pb` | `native` | `reopt`).
    pub algo: String,
    /// Actual-location grid cell; `None` picks the grid midpoint. An
    /// out-of-range cell is refused with a structured error (see
    /// [`resolve_qa`]), never clamped.
    pub qa: Option<Cell>,
    /// Per-session chaos seed, mixed into the server's base fault config
    /// so concurrent sessions draw independent fault schedules.
    pub seed: u64,
}

impl SessionSpec {
    /// A midpoint session with a seed derived from its id.
    pub fn new(id: usize, query: impl Into<String>, algo: impl Into<String>) -> SessionSpec {
        SessionSpec { id, query: query.into(), algo: algo.into(), qa: None, seed: id as u64 }
    }
}

/// Resolve a session's actual-location cell against the surface it will
/// run on: `None` picks the grid midpoint; an explicit cell must lie
/// inside the grid.
///
/// Out-of-range cells used to be silently clamped to the last cell, which
/// quietly reported MSO/ASO for the wrong actual location — a real bug
/// once specs arrive over a socket. They are a structured refusal now.
///
/// # Errors
/// [`RqpError::Config`] when `qa` is outside `0..cells`.
pub fn resolve_qa(qa: Option<Cell>, cells: usize) -> RqpResult<Cell> {
    match qa {
        None => Ok(cells / 2),
        Some(c) if c < cells => Ok(c),
        Some(c) => Err(RqpError::Config(format!(
            "session qa {c} is out of range for a {cells}-cell surface"
        ))),
    }
}

/// The compile fingerprint a session's (query, resolution) pair maps to —
/// the exact value [`crate::Server`] computes before touching the
/// registry, exposed so a remote client can route sessions to the shard
/// that owns the fingerprint.
///
/// # Errors
/// [`RqpError::Config`] for an unknown workload name.
pub fn session_fingerprint(query: &str, resolution: Option<usize>) -> RqpResult<u64> {
    let w = Workload::by_name(query)?;
    let model = CostModel::default();
    let mut cfg = EssConfig::coarse(w.query.dims());
    if let Some(r) = resolution {
        cfg.resolution = r;
    }
    Ok(compile_fingerprint(&w.catalog, &w.query, &model, &cfg))
}

/// Resolve an algorithm token to its discovery implementation.
///
/// # Errors
/// Returns [`RqpError::Config`] for unknown tokens.
pub fn algo_by_name(name: &str) -> RqpResult<Box<dyn Discovery>> {
    match name.to_ascii_lowercase().as_str() {
        "sb" => Ok(Box::new(SpillBound::with_refined_bounds())),
        "ab" => Ok(Box::new(AlignedBound::new())),
        "pb" => Ok(Box::new(PlanBouquet::new())),
        "native" => Ok(Box::new(NativeOptimizer)),
        "reopt" => Ok(Box::new(ReOptimizer::default())),
        other => {
            Err(RqpError::Config(format!("unknown algorithm {other:?} (sb|ab|pb|native|reopt)")))
        }
    }
}

/// How a session ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionOutcome {
    /// Discovery finished; the trace completed cleanly.
    Completed,
    /// Admission was refused — the queue was at capacity.
    Rejected,
    /// The per-session deadline elapsed (before or during discovery).
    DeadlineExpired,
    /// Discovery finished but spent more than the configured
    /// suboptimality budget cap.
    OverBudget,
    /// The fingerprint's circuit breaker was open and no degraded path was
    /// configured; carries the breaker's refusal (cause + re-probe window).
    BreakerOpen(String),
    /// The fingerprint's circuit breaker was open, so the session was
    /// served by the native optimizer without the compiled ESS — a valid
    /// answer with no robustness guarantee, flagged rather than hidden.
    Degraded,
    /// The spec itself was invalid (e.g. an out-of-range `qa` cell);
    /// refused with the structured reason before discovery ran.
    InvalidSpec(String),
    /// Compilation or discovery failed; carries the reason.
    Failed(String),
}

impl SessionOutcome {
    /// Short stable label for reports and events.
    pub fn label(&self) -> &'static str {
        match self {
            SessionOutcome::Completed => "completed",
            SessionOutcome::Rejected => "rejected",
            SessionOutcome::DeadlineExpired => "deadline_expired",
            SessionOutcome::OverBudget => "over_budget",
            SessionOutcome::BreakerOpen(_) => "breaker_open",
            SessionOutcome::Degraded => "degraded",
            SessionOutcome::InvalidSpec(_) => "invalid_spec",
            SessionOutcome::Failed(_) => "failed",
        }
    }
}

/// The record a served session leaves behind.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// The session id from the spec.
    pub id: usize,
    /// Workload name.
    pub query: String,
    /// Algorithm token (normalized to lowercase).
    pub algo: String,
    /// How the session ended.
    pub outcome: SessionOutcome,
    /// Accounted suboptimality (`None` when discovery never ran).
    pub subopt: Option<f64>,
    /// Executions in the discovery trace (0 when discovery never ran).
    pub steps: usize,
    /// Wall-clock from admission to result (queueing included).
    pub wall: Duration,
    /// How this session's registry lookup resolved (`None` when it never
    /// reached the registry).
    pub lookup: Option<crate::registry::Lookup>,
    /// Rendered discovery trace, kept only when the server is configured
    /// with `keep_traces`.
    pub trace_render: Option<String>,
    /// Total accounted execution cost of the discovery run (`None` when
    /// discovery never ran). Causal Execution spans' `spent` attributes sum
    /// to this.
    pub total_cost: Option<f64>,
    /// The session's causal trace, populated when the server runs with
    /// `tracing` enabled (empty otherwise). Ordered by span start time.
    pub spans: Vec<rqp_obs::SpanRecord>,
}

impl SessionResult {
    /// Whether this session's discovery finished (completed or
    /// over-budget — the trace is valid either way). Degraded sessions
    /// produced an answer but no discovery trace, so they don't count.
    pub fn discovered(&self) -> bool {
        matches!(self.outcome, SessionOutcome::Completed | SessionOutcome::OverBudget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_tokens_resolve_case_insensitively() {
        for t in ["sb", "AB", "pb", "native", "REOPT"] {
            assert!(algo_by_name(t).is_ok(), "{t}");
        }
        let err = match algo_by_name("vulcan") {
            Err(e) => e.to_string(),
            Ok(_) => panic!("vulcan must not resolve"),
        };
        assert!(err.contains("unknown algorithm"), "{err}");
    }

    #[test]
    fn resolve_qa_defaults_to_midpoint_and_refuses_out_of_range() {
        assert_eq!(resolve_qa(None, 9).unwrap(), 4);
        assert_eq!(resolve_qa(Some(0), 9).unwrap(), 0);
        assert_eq!(resolve_qa(Some(8), 9).unwrap(), 8);
        let err = resolve_qa(Some(9), 9).expect_err("one past the end");
        assert!(err.to_string().contains("out of range"), "{err}");
        assert!(resolve_qa(Some(usize::MAX), 9).is_err());
    }

    #[test]
    fn session_fingerprint_is_stable_and_resolution_sensitive() {
        let a = session_fingerprint("2D_Q91", None).unwrap();
        let b = session_fingerprint("2D_Q91", None).unwrap();
        assert_eq!(a, b, "same inputs, same fingerprint");
        let c = session_fingerprint("2D_Q91", Some(7)).unwrap();
        assert_ne!(a, c, "resolution is part of the fingerprint");
        assert!(session_fingerprint("NO_SUCH_QUERY", None).is_err());
    }

    #[test]
    fn outcome_labels_are_stable() {
        assert_eq!(SessionOutcome::Completed.label(), "completed");
        assert_eq!(SessionOutcome::Failed("x".into()).label(), "failed");
        assert_eq!(SessionOutcome::Rejected.label(), "rejected");
        assert_eq!(SessionOutcome::BreakerOpen("x".into()).label(), "breaker_open");
        assert_eq!(SessionOutcome::Degraded.label(), "degraded");
    }
}
