//! The framed wire protocol for network serving.
//!
//! A connection carries a stream of **frames**: a 4-byte big-endian
//! length prefix followed by one UTF-8 JSON document encoded with the
//! self-contained codec in `rqp_obs::json` (no external dependency that
//! the offline build can stub out). The length is validated against
//! [`MAX_FRAME_LEN`] *before* any allocation, so a hostile or corrupt
//! prefix cannot make the server reserve gigabytes.
//!
//! Every float that must survive the round trip byte-exactly
//! (suboptimality, costs, budgets) crosses the wire as its IEEE-754 bit
//! pattern (`f64::to_bits`, a JSON integer), never as a decimal
//! rendering — remote reports must be *byte-identical* to in-proc ones
//! under [`crate::ServeReport::stable_render`], and that guarantee would
//! die in a lossy float print.
//!
//! The frame vocabulary maps one-to-one onto the in-proc serving API;
//! see `DESIGN.md` ("Wire protocol") for the full table. Briefly:
//! [`Frame::Session`] is [`crate::Server::submit`], [`Frame::Reject`] is
//! the structured [`rqp_catalog::RqpError::Overloaded`] admission
//! refusal, [`Frame::Progress`] streams [`crate::SessionUpdate`]s, and
//! [`Frame::Result`]/[`Frame::Stats`] carry what a drain report holds.

use crate::registry::{Lookup, RegistryStats};
use crate::session::{SessionOutcome, SessionResult, SessionSpec};
use rqp_catalog::{RqpError, RqpResult};
use rqp_obs::json::{self, JsonValue, Map};
use std::io::{Read, Write};
use std::time::Duration;

/// Protocol version carried in the [`Frame::Hello`] greeting; a client
/// refuses to speak to a server on a different version.
pub const PROTOCOL_VERSION: u64 = 1;

/// Hard cap on one frame's payload length. A length prefix above this is
/// a protocol error and drops the connection before any allocation —
/// the anti-OOM guard for hostile or corrupt prefixes.
pub const MAX_FRAME_LEN: usize = 4 * 1024 * 1024;

/// How many consecutive read timeouts *mid-frame* are tolerated before
/// the peer is declared wedged and the connection dropped. Timeouts at a
/// frame boundary are normal idleness ([`WireRead::Idle`]); a peer that
/// sends half a frame and stalls is a slow-loris and gets cut off.
const MID_FRAME_TIMEOUT_CAP: usize = 300;

/// One decoded message. The `doc` comments state the in-proc call each
/// frame replaces.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Server → client greeting: protocol version and the shard identity
    /// of this process (`shard` in `0..shards`; an unsharded server is
    /// `0/1`). Replaces constructing a [`crate::Server`] handle.
    Hello {
        /// Protocol version ([`PROTOCOL_VERSION`]).
        version: u64,
        /// This server's shard index.
        shard: usize,
        /// Total shard count the deployment was launched with.
        shards: usize,
    },
    /// Client → server: run one session. Replaces
    /// [`crate::Server::submit`].
    Session {
        /// Client-assigned session id (echoed on every later frame).
        id: usize,
        /// Workload name.
        query: String,
        /// Algorithm token.
        algo: String,
        /// Actual-location cell (`None` = grid midpoint).
        qa: Option<usize>,
        /// Chaos seed.
        seed: u64,
    },
    /// Server → client: live progress for a running session. Replaces
    /// the [`crate::SessionUpdate`] sink of
    /// [`crate::Server::submit_with`].
    Progress {
        /// Session id.
        id: usize,
        /// `started` | `surface` | `step`.
        phase: String,
        /// Lookup label for the `surface` phase.
        lookup: Option<String>,
        /// Step index for the `step` phase.
        step: Option<usize>,
        /// Step budget bits (`f64::to_bits`) for the `step` phase.
        budget_bits: Option<u64>,
        /// Step spent bits for the `step` phase.
        spent_bits: Option<u64>,
        /// Whether the step's execution completed, for the `step` phase.
        completed: Option<bool>,
    },
    /// Server → client: a session's terminal result. Replaces reading
    /// one entry of [`crate::ServeReport::results`].
    Result(Box<WireResult>),
    /// Server → client: admission refused — the wire form of the
    /// structured [`RqpError::Overloaded`] backpressure error.
    Reject {
        /// Session id that was refused.
        id: usize,
        /// Queue depth at refusal.
        queue_depth: usize,
        /// Configured queue capacity.
        cap: usize,
    },
    /// Server → client: a structured error (`id = None` means the
    /// connection itself, e.g. a malformed frame).
    Error {
        /// Session the error belongs to, if any.
        id: Option<usize>,
        /// Stable error class (`config` | `internal` | `overloaded` | …).
        code: String,
        /// Human-readable reason.
        message: String,
    },
    /// Client → server: no more sessions on this connection; stream the
    /// remaining results, then [`Frame::Stats`]. Replaces
    /// [`crate::Server::drain`]'s "no new submissions" half.
    Bye,
    /// Server → client: final registry counters for this shard, sent
    /// after every session submitted on the connection has its terminal
    /// frame. Replaces [`crate::Server::registry_stats`].
    Stats(RegistryStats),
    /// Client → server: stop the whole server process after draining
    /// (deployment control for drills and smoke tests).
    Shutdown,
}

/// A [`SessionResult`] as it crosses the wire. Floats travel as bit
/// patterns; the causal span tree stays server-side (it is queryable via
/// the telemetry endpoint) but the rendered discovery trace — the
/// byte-identical-local-vs-remote artifact — travels intact.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResult {
    /// Session id.
    pub id: usize,
    /// Workload name.
    pub query: String,
    /// Algorithm token (lowercased by the server).
    pub algo: String,
    /// Outcome label (see [`SessionOutcome::label`]).
    pub outcome: String,
    /// Structured reason for refusal/failure outcomes.
    pub detail: Option<String>,
    /// `f64::to_bits` of the accounted suboptimality.
    pub subopt_bits: Option<u64>,
    /// Executions in the discovery trace.
    pub steps: usize,
    /// Server-side wall clock, in nanoseconds.
    pub wall_nanos: u64,
    /// Registry lookup label ([`Lookup::label`]).
    pub lookup: Option<String>,
    /// `f64::to_bits` of the total accounted execution cost.
    pub total_cost_bits: Option<u64>,
    /// Rendered discovery trace (present when the server keeps traces).
    pub trace_render: Option<String>,
}

impl WireResult {
    /// Encode a finished session for the wire.
    pub fn from_result(r: &SessionResult) -> WireResult {
        let (outcome, detail) = match &r.outcome {
            SessionOutcome::BreakerOpen(why)
            | SessionOutcome::InvalidSpec(why)
            | SessionOutcome::Failed(why) => (r.outcome.label(), Some(why.clone())),
            other => (other.label(), None),
        };
        WireResult {
            id: r.id,
            query: r.query.clone(),
            algo: r.algo.clone(),
            outcome: outcome.to_string(),
            detail,
            subopt_bits: r.subopt.map(f64::to_bits),
            steps: r.steps,
            wall_nanos: u64::try_from(r.wall.as_nanos()).unwrap_or(u64::MAX),
            lookup: r.lookup.map(Lookup::label).map(str::to_string),
            total_cost_bits: r.total_cost.map(f64::to_bits),
            trace_render: r.trace_render.clone(),
        }
    }

    /// Decode back into the [`SessionResult`] an in-proc drain would have
    /// produced (spans stay server-side).
    ///
    /// # Errors
    /// [`RqpError::Config`] on an unknown outcome or lookup label.
    pub fn into_result(self) -> RqpResult<SessionResult> {
        let detail = self.detail.unwrap_or_default();
        let outcome = match self.outcome.as_str() {
            "completed" => SessionOutcome::Completed,
            "rejected" => SessionOutcome::Rejected,
            "deadline_expired" => SessionOutcome::DeadlineExpired,
            "over_budget" => SessionOutcome::OverBudget,
            "breaker_open" => SessionOutcome::BreakerOpen(detail),
            "degraded" => SessionOutcome::Degraded,
            "invalid_spec" => SessionOutcome::InvalidSpec(detail),
            "failed" => SessionOutcome::Failed(detail),
            other => {
                return Err(RqpError::Config(format!("unknown wire outcome {other:?}")));
            }
        };
        let lookup =
            match self.lookup {
                None => None,
                Some(label) => Some(Lookup::from_label(&label).ok_or_else(|| {
                    RqpError::Config(format!("unknown wire lookup label {label:?}"))
                })?),
            };
        Ok(SessionResult {
            id: self.id,
            query: self.query,
            algo: self.algo,
            outcome,
            subopt: self.subopt_bits.map(f64::from_bits),
            steps: self.steps,
            wall: Duration::from_nanos(self.wall_nanos),
            lookup,
            trace_render: self.trace_render,
            total_cost: self.total_cost_bits.map(f64::from_bits),
            spans: Vec::new(),
        })
    }
}

/// What one [`read_frame`] call produced.
#[derive(Debug)]
pub enum WireRead {
    /// One decoded frame.
    Frame(Frame),
    /// The peer closed the connection cleanly (EOF at a frame boundary).
    Closed,
    /// A read timeout fired at a frame boundary — the connection is
    /// merely idle; poll again.
    Idle,
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// Write one frame: big-endian length prefix, then the JSON payload.
///
/// # Errors
/// [`RqpError::Internal`] on a socket error or a frame over
/// [`MAX_FRAME_LEN`] (nothing legitimate encodes that large).
pub fn write_frame(stream: &mut impl Write, frame: &Frame) -> RqpResult<()> {
    let body = frame.encode().to_json();
    let bytes = body.as_bytes();
    if bytes.len() > MAX_FRAME_LEN {
        return Err(RqpError::Internal(format!(
            "refusing to send a {}-byte frame (cap {MAX_FRAME_LEN})",
            bytes.len()
        )));
    }
    let len = (bytes.len() as u32).to_be_bytes();
    stream
        .write_all(&len)
        .and_then(|()| stream.write_all(bytes))
        .and_then(|()| stream.flush())
        .map_err(|e| RqpError::Internal(format!("wire write: {e}")))
}

/// Read one frame, tolerating read timeouts at a frame boundary (so a
/// server thread can poll its stop flag between frames).
///
/// # Errors
/// [`RqpError::Config`] for protocol violations (oversized length
/// prefix, undecodable payload, unknown frame type) and
/// [`RqpError::Internal`] for socket errors, mid-frame EOF, or a peer
/// that stalls mid-frame past the slow-loris cap. Either way the caller
/// must drop the connection: framing is lost.
pub fn read_frame(stream: &mut impl Read) -> RqpResult<WireRead> {
    let mut len_buf = [0u8; 4];
    match read_exact_tolerant(stream, &mut len_buf, true)? {
        ReadStatus::Done => {}
        ReadStatus::CleanEof => return Ok(WireRead::Closed),
        ReadStatus::Idle => return Ok(WireRead::Idle),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(RqpError::Config(format!(
            "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"
        )));
    }
    let mut body = vec![0u8; len];
    match read_exact_tolerant(stream, &mut body, false)? {
        ReadStatus::Done => {}
        // Both are mid-frame here: the prefix promised `len` more bytes.
        ReadStatus::CleanEof | ReadStatus::Idle => {
            return Err(RqpError::Internal("connection closed mid-frame".to_string()));
        }
    }
    let value = json::parse_bytes(&body)
        .map_err(|e| RqpError::Config(format!("undecodable frame payload: {e}")))?;
    Frame::decode(&value).map(WireRead::Frame)
}

enum ReadStatus {
    Done,
    CleanEof,
    Idle,
}

/// Fill `buf`, retrying timeouts. With `at_boundary`, EOF/timeout before
/// the first byte is a clean state rather than an error; once any byte
/// has arrived the frame must complete within the slow-loris cap.
fn read_exact_tolerant(
    stream: &mut impl Read,
    buf: &mut [u8],
    at_boundary: bool,
) -> RqpResult<ReadStatus> {
    let mut got = 0usize;
    let mut stalls = 0usize;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 && at_boundary {
                    return Ok(ReadStatus::CleanEof);
                }
                return Err(RqpError::Internal("connection closed mid-frame".to_string()));
            }
            Ok(n) => {
                got += n;
                stalls = 0;
            }
            Err(e) if is_timeout(&e) => {
                if got == 0 && at_boundary {
                    return Ok(ReadStatus::Idle);
                }
                stalls += 1;
                if stalls > MID_FRAME_TIMEOUT_CAP {
                    return Err(RqpError::Internal(
                        "peer stalled mid-frame; dropping the connection".to_string(),
                    ));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(RqpError::Internal(format!("wire read: {e}"))),
        }
    }
    Ok(ReadStatus::Done)
}

// ---- JSON mapping -----------------------------------------------------

fn obj(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
    let mut m = Map::new();
    for (k, v) in pairs {
        m.insert(k.to_string(), v);
    }
    JsonValue::Object(m)
}

fn u(v: u64) -> JsonValue {
    JsonValue::from(v)
}

fn need_u64(v: &JsonValue, key: &str) -> RqpResult<u64> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| RqpError::Config(format!("frame field {key:?} missing or not an integer")))
}

fn need_usize(v: &JsonValue, key: &str) -> RqpResult<usize> {
    usize::try_from(need_u64(v, key)?)
        .map_err(|_| RqpError::Config(format!("frame field {key:?} out of range")))
}

fn need_str(v: &JsonValue, key: &str) -> RqpResult<String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| RqpError::Config(format!("frame field {key:?} missing or not a string")))
}

fn opt_u64(v: &JsonValue, key: &str) -> Option<u64> {
    v.get(key).and_then(JsonValue::as_u64)
}

fn opt_usize(v: &JsonValue, key: &str) -> Option<usize> {
    opt_u64(v, key).and_then(|x| usize::try_from(x).ok())
}

fn opt_str(v: &JsonValue, key: &str) -> Option<String> {
    v.get(key).and_then(JsonValue::as_str).map(str::to_string)
}

fn opt_bool(v: &JsonValue, key: &str) -> Option<bool> {
    v.get(key).and_then(JsonValue::as_bool)
}

impl Frame {
    /// Encode to the JSON document that goes inside a length-prefixed
    /// frame. The `"type"` member discriminates.
    pub fn encode(&self) -> JsonValue {
        match self {
            Frame::Hello { version, shard, shards } => obj(vec![
                ("type", JsonValue::from("hello")),
                ("version", u(*version)),
                ("shard", u(*shard as u64)),
                ("shards", u(*shards as u64)),
            ]),
            Frame::Session { id, query, algo, qa, seed } => {
                let mut pairs = vec![
                    ("type", JsonValue::from("session")),
                    ("id", u(*id as u64)),
                    ("query", JsonValue::from(query.as_str())),
                    ("algo", JsonValue::from(algo.as_str())),
                    ("seed", u(*seed)),
                ];
                if let Some(qa) = qa {
                    pairs.push(("qa", u(*qa as u64)));
                }
                obj(pairs)
            }
            Frame::Progress { id, phase, lookup, step, budget_bits, spent_bits, completed } => {
                let mut pairs = vec![
                    ("type", JsonValue::from("progress")),
                    ("id", u(*id as u64)),
                    ("phase", JsonValue::from(phase.as_str())),
                ];
                if let Some(l) = lookup {
                    pairs.push(("lookup", JsonValue::from(l.as_str())));
                }
                if let Some(s) = step {
                    pairs.push(("step", u(*s as u64)));
                }
                if let Some(b) = budget_bits {
                    pairs.push(("budget_bits", u(*b)));
                }
                if let Some(s) = spent_bits {
                    pairs.push(("spent_bits", u(*s)));
                }
                if let Some(c) = completed {
                    pairs.push(("completed", JsonValue::from(*c)));
                }
                obj(pairs)
            }
            Frame::Result(r) => {
                let mut pairs = vec![
                    ("type", JsonValue::from("result")),
                    ("id", u(r.id as u64)),
                    ("query", JsonValue::from(r.query.as_str())),
                    ("algo", JsonValue::from(r.algo.as_str())),
                    ("outcome", JsonValue::from(r.outcome.as_str())),
                    ("steps", u(r.steps as u64)),
                    ("wall_nanos", u(r.wall_nanos)),
                ];
                if let Some(d) = &r.detail {
                    pairs.push(("detail", JsonValue::from(d.as_str())));
                }
                if let Some(b) = r.subopt_bits {
                    pairs.push(("subopt_bits", u(b)));
                }
                if let Some(l) = &r.lookup {
                    pairs.push(("lookup", JsonValue::from(l.as_str())));
                }
                if let Some(b) = r.total_cost_bits {
                    pairs.push(("total_cost_bits", u(b)));
                }
                if let Some(t) = &r.trace_render {
                    pairs.push(("trace_render", JsonValue::from(t.as_str())));
                }
                obj(pairs)
            }
            Frame::Reject { id, queue_depth, cap } => obj(vec![
                ("type", JsonValue::from("reject")),
                ("id", u(*id as u64)),
                ("queue_depth", u(*queue_depth as u64)),
                ("cap", u(*cap as u64)),
            ]),
            Frame::Error { id, code, message } => {
                let mut pairs = vec![
                    ("type", JsonValue::from("error")),
                    ("code", JsonValue::from(code.as_str())),
                    ("message", JsonValue::from(message.as_str())),
                ];
                if let Some(id) = id {
                    pairs.push(("id", u(*id as u64)));
                }
                obj(pairs)
            }
            Frame::Bye => obj(vec![("type", JsonValue::from("bye"))]),
            Frame::Stats(s) => obj(vec![
                ("type", JsonValue::from("stats")),
                ("compiles", u(s.compiles)),
                ("hits", u(s.hits)),
                ("waits", u(s.waits)),
                ("disk_hits", u(s.disk_hits)),
                ("breaker_opens", u(s.breaker_opens)),
                ("breaker_reprobes", u(s.breaker_reprobes)),
                ("breaker_closes", u(s.breaker_closes)),
                ("breaker_refused", u(s.breaker_refused)),
                ("expired_waits", u(s.expired_waits)),
                ("entries", u(s.entries as u64)),
            ]),
            Frame::Shutdown => obj(vec![("type", JsonValue::from("shutdown"))]),
        }
    }

    /// Decode a frame payload.
    ///
    /// # Errors
    /// [`RqpError::Config`] on a missing/unknown `type` or missing
    /// required fields — protocol errors that drop the connection.
    pub fn decode(v: &JsonValue) -> RqpResult<Frame> {
        let kind = need_str(v, "type")?;
        match kind.as_str() {
            "hello" => Ok(Frame::Hello {
                version: need_u64(v, "version")?,
                shard: need_usize(v, "shard")?,
                shards: need_usize(v, "shards")?,
            }),
            "session" => Ok(Frame::Session {
                id: need_usize(v, "id")?,
                query: need_str(v, "query")?,
                algo: need_str(v, "algo")?,
                qa: opt_usize(v, "qa"),
                seed: need_u64(v, "seed")?,
            }),
            "progress" => Ok(Frame::Progress {
                id: need_usize(v, "id")?,
                phase: need_str(v, "phase")?,
                lookup: opt_str(v, "lookup"),
                step: opt_usize(v, "step"),
                budget_bits: opt_u64(v, "budget_bits"),
                spent_bits: opt_u64(v, "spent_bits"),
                completed: opt_bool(v, "completed"),
            }),
            "result" => Ok(Frame::Result(Box::new(WireResult {
                id: need_usize(v, "id")?,
                query: need_str(v, "query")?,
                algo: need_str(v, "algo")?,
                outcome: need_str(v, "outcome")?,
                detail: opt_str(v, "detail"),
                subopt_bits: opt_u64(v, "subopt_bits"),
                steps: need_usize(v, "steps")?,
                wall_nanos: need_u64(v, "wall_nanos")?,
                lookup: opt_str(v, "lookup"),
                total_cost_bits: opt_u64(v, "total_cost_bits"),
                trace_render: opt_str(v, "trace_render"),
            }))),
            "reject" => Ok(Frame::Reject {
                id: need_usize(v, "id")?,
                queue_depth: need_usize(v, "queue_depth")?,
                cap: need_usize(v, "cap")?,
            }),
            "error" => Ok(Frame::Error {
                id: opt_usize(v, "id"),
                code: need_str(v, "code")?,
                message: need_str(v, "message")?,
            }),
            "bye" => Ok(Frame::Bye),
            "stats" => Ok(Frame::Stats(RegistryStats {
                compiles: need_u64(v, "compiles")?,
                hits: need_u64(v, "hits")?,
                waits: need_u64(v, "waits")?,
                disk_hits: need_u64(v, "disk_hits")?,
                breaker_opens: need_u64(v, "breaker_opens")?,
                breaker_reprobes: need_u64(v, "breaker_reprobes")?,
                breaker_closes: need_u64(v, "breaker_closes")?,
                breaker_refused: need_u64(v, "breaker_refused")?,
                expired_waits: need_u64(v, "expired_waits")?,
                entries: need_usize(v, "entries")?,
            })),
            "shutdown" => Ok(Frame::Shutdown),
            other => Err(RqpError::Config(format!("unknown frame type {other:?}"))),
        }
    }

    /// The wire form of a refused session spec, from the structured
    /// admission error ([`RqpError::Overloaded`] → [`Frame::Reject`],
    /// anything else → [`Frame::Error`]).
    pub fn from_submit_error(spec: &SessionSpec, err: &RqpError) -> Frame {
        match err {
            RqpError::Overloaded { queue_depth, cap } => {
                Frame::Reject { id: spec.id, queue_depth: *queue_depth, cap: *cap }
            }
            RqpError::Config(msg) => {
                Frame::Error { id: Some(spec.id), code: "config".to_string(), message: msg.clone() }
            }
            other => Frame::Error {
                id: Some(spec.id),
                code: "internal".to_string(),
                message: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: &Frame) -> Frame {
        let mut buf = Vec::new();
        write_frame(&mut buf, frame).expect("encode");
        let mut cursor = &buf[..];
        match read_frame(&mut cursor).expect("decode") {
            WireRead::Frame(f) => f,
            other => panic!("expected a frame, got {other:?}"),
        }
    }

    #[test]
    fn frames_round_trip() {
        let frames = vec![
            Frame::Hello { version: PROTOCOL_VERSION, shard: 1, shards: 2 },
            Frame::Session {
                id: 7,
                query: "2D_Q91".to_string(),
                algo: "sb".to_string(),
                qa: Some(3),
                seed: 42,
            },
            Frame::Session {
                id: 8,
                query: "3D_Q15".to_string(),
                algo: "ab".to_string(),
                qa: None,
                seed: 8,
            },
            Frame::Progress {
                id: 7,
                phase: "step".to_string(),
                lookup: None,
                step: Some(2),
                budget_bits: Some(1.5f64.to_bits()),
                spent_bits: Some(0.25f64.to_bits()),
                completed: Some(false),
            },
            Frame::Reject { id: 9, queue_depth: 64, cap: 64 },
            Frame::Error { id: None, code: "config".to_string(), message: "nope".to_string() },
            Frame::Bye,
            Frame::Stats(RegistryStats { compiles: 1, hits: 14, waits: 1, ..Default::default() }),
            Frame::Shutdown,
        ];
        for f in &frames {
            assert_eq!(&roundtrip(f), f, "{f:?}");
        }
    }

    #[test]
    fn results_round_trip_bit_exactly() {
        // Including a subnormal, a NaN and an infinity: bit patterns, not
        // decimal renderings, are what crosses the wire.
        for subopt in [1.0, 1.0000000000000002, f64::INFINITY, f64::NAN, 5e-324] {
            let r = SessionResult {
                id: 3,
                query: "2D_Q91".to_string(),
                algo: "sb".to_string(),
                outcome: SessionOutcome::Completed,
                subopt: Some(subopt),
                steps: 4,
                wall: Duration::from_micros(1234),
                lookup: Some(Lookup::Waited),
                trace_render: Some("band 1 plan 2".to_string()),
                total_cost: Some(subopt * 3.0),
                spans: Vec::new(),
            };
            let wire = WireResult::from_result(&r);
            let back = match roundtrip(&Frame::Result(Box::new(wire))) {
                Frame::Result(w) => w.into_result().expect("decode result"),
                other => panic!("expected result frame, got {other:?}"),
            };
            assert_eq!(back.subopt.map(f64::to_bits), r.subopt.map(f64::to_bits));
            assert_eq!(back.total_cost.map(f64::to_bits), r.total_cost.map(f64::to_bits));
            assert_eq!(back.outcome, r.outcome);
            assert_eq!(back.lookup, r.lookup);
            assert_eq!(back.trace_render, r.trace_render);
            assert_eq!(back.wall, r.wall);
        }
    }

    #[test]
    fn outcome_details_survive() {
        let r = SessionResult {
            id: 0,
            query: "q".to_string(),
            algo: "sb".to_string(),
            outcome: SessionOutcome::InvalidSpec("qa 99 is out of range".to_string()),
            subopt: None,
            steps: 0,
            wall: Duration::ZERO,
            lookup: None,
            trace_render: None,
            total_cost: None,
            spans: Vec::new(),
        };
        let back = WireResult::from_result(&r).into_result().expect("decode");
        assert_eq!(back.outcome, r.outcome);
    }

    #[test]
    fn hostile_length_prefix_is_refused_before_allocation() {
        // 0xFFFF_FFFF = a 4 GiB promise; must fail on the cap check, not
        // by attempting the allocation.
        let mut cursor = &[0xffu8, 0xff, 0xff, 0xff, b'{', b'}'][..];
        let err = match read_frame(&mut cursor) {
            Err(e) => e.to_string(),
            Ok(f) => panic!("hostile prefix must not decode: {f:?}"),
        };
        assert!(err.contains("cap"), "{err}");
    }

    #[test]
    fn truncated_and_garbage_payloads_are_structured_errors() {
        // Length prefix promises 10 bytes, stream has 3.
        let mut cursor = &[0u8, 0, 0, 10, b'{', b'}', b'!'][..];
        assert!(read_frame(&mut cursor).is_err());
        // Correct length, non-JSON payload.
        let mut cursor = &[0u8, 0, 0, 3, 0xff, 0xfe, 0xfd][..];
        let err = match read_frame(&mut cursor) {
            Err(e) => e.to_string(),
            Ok(f) => panic!("garbage must not decode: {f:?}"),
        };
        assert!(err.contains("undecodable"), "{err}");
        // Valid JSON, not a frame.
        let mut cursor = &[0u8, 0, 0, 2, b'{', b'}'][..];
        assert!(read_frame(&mut cursor).is_err());
        // Clean EOF at a boundary.
        let mut cursor = &[][..];
        assert!(matches!(read_frame(&mut cursor), Ok(WireRead::Closed)));
    }

    #[test]
    fn submit_errors_map_to_wire_frames() {
        let spec = SessionSpec::new(5, "2D_Q91", "sb");
        let f = Frame::from_submit_error(&spec, &RqpError::Overloaded { queue_depth: 8, cap: 8 });
        assert_eq!(f, Frame::Reject { id: 5, queue_depth: 8, cap: 8 });
        let f = Frame::from_submit_error(&spec, &RqpError::Config("draining".to_string()));
        assert!(matches!(f, Frame::Error { id: Some(5), .. }), "{f:?}");
    }
}
