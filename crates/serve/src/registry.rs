//! The shared POSP registry: fingerprint-keyed, single-flight compiled
//! ESS surfaces shared across concurrent sessions.
//!
//! Compiling an ESS is the expensive offline step of the paper (§7:
//! repeated optimizer calls over the whole grid); a serving deployment
//! sees the same query templates over and over, so N simultaneous
//! sessions for one fingerprint must trigger exactly **one** compile. The
//! registry guarantees that with a classic single-flight protocol:
//!
//! * first session for a fingerprint inserts a `Pending` marker, drops
//!   the shard lock, and compiles;
//! * peers arriving mid-compile block on the shard's condvar (counted as
//!   single-flight waits) instead of starting their own compile;
//! * the finished surface is published as `Ready(Arc<Ess>)` and every
//!   waiter clones the `Arc` — the surface itself is never copied.
//!
//! Compile **failures are cached** too (`Failed`): a fingerprint that
//! cannot compile is refused instantly for every later session instead of
//! burning a full grid sweep per arrival. And because the compile runs
//! outside the lock under a drop guard, a compile that unwinds (only
//! possible under test harnesses; library code is panic-free by lint)
//! publishes `Failed` rather than wedging its waiters — a chaotic session
//! can never poison the shared registry.

use crate::obs::metrics;
use rqp_catalog::{RqpError, RqpResult};
use rqp_ess::Ess;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// How a [`EssRegistry::get_or_compile`] call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// This call compiled the surface (first session for the fingerprint).
    Compiled,
    /// The surface was already resident; served instantly.
    Hit,
    /// A peer was mid-compile; this call blocked until it published.
    Waited,
}

enum Entry {
    /// A session is compiling this fingerprint right now.
    Pending,
    /// The compiled surface, shared by reference counting.
    Ready(Arc<Ess>),
    /// The compile failed; refused instantly for every later session.
    Failed(RqpError),
}

struct Shard {
    map: Mutex<HashMap<u64, Entry>>,
    published: Condvar,
}

impl Shard {
    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Entry>> {
        self.map.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Counter snapshot of a registry's lifetime activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Compiles actually executed (== distinct fingerprints attempted).
    pub compiles: u64,
    /// Lookups served by an already-resident surface (or cached failure).
    pub hits: u64,
    /// Lookups that blocked on a peer's in-flight compile.
    pub waits: u64,
    /// Fingerprints currently resident (ready or failed).
    pub entries: usize,
}

/// Publishes `Failed` if the compiling session unwinds before storing a
/// result, so waiters wake with an error instead of blocking forever.
struct PendingGuard<'a> {
    shard: &'a Shard,
    fp: u64,
    armed: bool,
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.shard.lock().insert(
                self.fp,
                Entry::Failed(RqpError::Internal("ESS compile aborted mid-flight".to_string())),
            );
            self.shard.published.notify_all();
        }
    }
}

/// A sharded, fingerprint-keyed map of compiled ESS surfaces with
/// single-flight compilation.
pub struct EssRegistry {
    shards: Vec<Shard>,
    compiles: AtomicU64,
    hits: AtomicU64,
    waits: AtomicU64,
}

impl EssRegistry {
    /// A registry with `shards` independent lock domains (clamped to at
    /// least 1). Sessions for different fingerprints in different shards
    /// never contend on a lock.
    pub fn new(shards: usize) -> EssRegistry {
        let shards = shards.max(1);
        EssRegistry {
            shards: (0..shards)
                .map(|_| Shard { map: Mutex::new(HashMap::new()), published: Condvar::new() })
                .collect(),
            compiles: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            waits: AtomicU64::new(0),
        }
    }

    fn shard(&self, fp: u64) -> &Shard {
        let n = self.shards.len();
        &self.shards[(fp % n as u64) as usize]
    }

    /// Fetch the surface for `fp`, compiling it with `compile` if this is
    /// the first session to ask. Concurrent callers for the same
    /// fingerprint block until the one compile publishes; its failure (if
    /// any) is cached and returned to everyone.
    ///
    /// # Errors
    /// Propagates the (possibly cached) compile error.
    pub fn get_or_compile(
        &self,
        fp: u64,
        compile: impl FnOnce() -> RqpResult<Ess>,
    ) -> RqpResult<(Arc<Ess>, Lookup)> {
        let m = metrics();
        let shard = self.shard(fp);
        let mut map = shard.lock();
        let mut wait_sw: Option<rqp_obs::Stopwatch> = None;
        let record_wait = |sw: Option<rqp_obs::Stopwatch>| {
            if let Some(sw) = sw {
                rqp_obs::current().record_span(
                    rqp_obs::names::SPAN_REGISTRY_WAIT,
                    rqp_obs::SpanKind::Wait,
                    sw.elapsed_secs(),
                    vec![("fingerprint", rqp_obs::JsonValue::from(fp))],
                );
            }
        };
        loop {
            match map.get(&fp) {
                None => break,
                Some(Entry::Ready(ess)) => {
                    let ess = Arc::clone(ess);
                    drop(map);
                    let lookup = self.note_resident(wait_sw.is_some());
                    record_wait(wait_sw);
                    return Ok((ess, lookup));
                }
                Some(Entry::Failed(e)) => {
                    let e = e.clone();
                    drop(map);
                    self.note_resident(wait_sw.is_some());
                    record_wait(wait_sw);
                    return Err(e);
                }
                Some(Entry::Pending) => {
                    if wait_sw.is_none() {
                        wait_sw = Some(rqp_obs::Stopwatch::start());
                        self.waits.fetch_add(1, Ordering::Relaxed);
                        m.singleflight_waits.inc();
                    }
                    map = shard.published.wait(map).unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
        // First session for this fingerprint: claim it and compile outside
        // the shard lock so peers of *other* fingerprints keep flowing.
        map.insert(fp, Entry::Pending);
        drop(map);
        self.compiles.fetch_add(1, Ordering::Relaxed);
        m.registry_misses.inc();
        let mut guard = PendingGuard { shard, fp, armed: true };
        let result = compile();
        let mut map = shard.lock();
        guard.armed = false;
        let out = match result {
            Ok(ess) => {
                let ess = Arc::new(ess);
                map.insert(fp, Entry::Ready(Arc::clone(&ess)));
                Ok((ess, Lookup::Compiled))
            }
            Err(e) => {
                map.insert(fp, Entry::Failed(e.clone()));
                Err(e)
            }
        };
        drop(map);
        shard.published.notify_all();
        out
    }

    fn note_resident(&self, waited: bool) -> Lookup {
        let m = metrics();
        if waited {
            Lookup::Waited
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            m.registry_hits.inc();
            Lookup::Hit
        }
    }

    /// Lifetime counters plus the resident-entry count.
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            compiles: self.compiles.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().len()).sum(),
        }
    }

    /// Number of resident fingerprints (ready or failed).
    pub fn len(&self) -> usize {
        self.stats().entries
    }

    /// Whether no fingerprint is resident yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_ess::EssConfig;
    use rqp_optimizer::Optimizer;
    use rqp_qplan::CostModel;
    use rqp_workloads::Workload;

    fn compile_example() -> RqpResult<Ess> {
        let w = Workload::q91(2)?;
        let opt = Optimizer::new(&w.catalog, &w.query, CostModel::default());
        Ess::compile_cached(&opt, EssConfig { resolution: 6, ..Default::default() }, None)
    }

    #[test]
    fn second_lookup_is_a_hit_on_the_same_surface() {
        let reg = EssRegistry::new(4);
        let (a, l1) = reg.get_or_compile(42, compile_example).unwrap();
        let (b, l2) = reg.get_or_compile(42, || panic!("must not recompile")).unwrap();
        assert_eq!(l1, Lookup::Compiled);
        assert_eq!(l2, Lookup::Hit);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = reg.stats();
        assert_eq!((stats.compiles, stats.hits, stats.entries), (1, 1, 1));
    }

    #[test]
    fn failures_are_cached_and_refused_instantly() {
        let reg = EssRegistry::new(1);
        let boom = || Err(RqpError::Config("no".into()));
        assert!(reg.get_or_compile(7, boom).is_err());
        let err = reg.get_or_compile(7, || panic!("must not retry")).unwrap_err();
        assert!(err.to_string().contains("no"));
        assert_eq!(reg.stats().compiles, 1);
    }

    #[test]
    fn a_panicking_compile_does_not_wedge_the_registry() {
        let reg = Arc::new(EssRegistry::new(1));
        let r2 = Arc::clone(&reg);
        let h = std::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = r2.get_or_compile(9, || panic!("chaotic compile"));
            }));
        });
        h.join().unwrap();
        // The guard published Failed; later sessions get an error, not a hang.
        let err = reg.get_or_compile(9, || panic!("must not retry")).unwrap_err();
        assert!(err.to_string().contains("aborted"), "{err}");
    }
}
