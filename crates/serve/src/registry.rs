//! The shared POSP registry: fingerprint-keyed, single-flight compiled
//! ESS surfaces shared across concurrent sessions, with per-fingerprint
//! circuit breakers, deadline-bounded waits and a persistent disk tier.
//!
//! Compiling an ESS is the expensive offline step of the paper (§7:
//! repeated optimizer calls over the whole grid); a serving deployment
//! sees the same query templates over and over, so N simultaneous
//! sessions for one fingerprint must trigger exactly **one** compile. The
//! registry guarantees that with a classic single-flight protocol:
//!
//! * first session for a fingerprint inserts a `Pending` marker, drops
//!   the shard lock, and compiles;
//! * peers arriving mid-compile block on the shard's condvar (counted as
//!   single-flight waits) — bounded by their session [`Deadline`]: a
//!   wedged peer compile costs a waiter at most its own deadline, never
//!   an unbounded hang;
//! * the finished surface is published as `Ready(Arc<Ess>)` and every
//!   waiter clones the `Arc` — the surface itself is never copied.
//!
//! Compile **failures open a circuit breaker** instead of poisoning the
//! fingerprint forever: a `Broken` entry refuses later sessions instantly
//! while its exponential-backoff window runs, then admits exactly one
//! half-open re-probe under the same single-flight discipline. A
//! transient failure (crash burst, injected chaos) therefore heals on its
//! own; only a deterministically-broken fingerprint stays open, and even
//! then each re-probe is one compile per backoff window, not one per
//! arrival. Because the compile runs outside the lock under a drop guard,
//! a compile that unwinds publishes `Broken` rather than wedging its
//! waiters — a chaotic session can never poison the shared registry.
//!
//! [`EssRegistry::get_or_lazy`] publishes **incremental** surfaces under
//! the same protocol: the single-flight window shrinks from the whole
//! grid to just the ladder anchors, the published entry is a shared
//! [`LazyEss`], and each peer then pulls (and waits on) only the contour
//! bands its own discovery reaches — a session terminating at contour
//! `k` never waits for bands above `k`. An eager lookup finding a lazy
//! entry upgrades it in place by finishing it, reusing every band
//! already materialized.
//!
//! When constructed [`EssRegistry::with_cache`], the registry adds a
//! **read-through / write-behind disk tier**: a miss first consults the
//! persistent [`CompileCache`] (restores count as [`Lookup::Restored`],
//! not compiles), and every fresh compile is written behind. A process
//! restart — or an explicit [`EssRegistry::wipe`] — therefore recovers
//! every previously-compiled fingerprint from disk with zero recompiles.

use crate::obs::metrics;
use rqp_catalog::{RqpError, RqpResult};
use rqp_chaos::{CompileFault, CompileFaultInjector, CompileSeam};
use rqp_ess::{CompileCache, Ess, LazyEss, PospSnapshot};
use rqp_obs::Deadline;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How a [`EssRegistry::get_or_compile`] call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// This call compiled the surface (first session for the fingerprint).
    Compiled,
    /// The surface was already resident; served instantly.
    Hit,
    /// A peer was mid-compile; this call blocked until it published.
    Waited,
    /// The surface was restored from the persistent disk cache without a
    /// compile (warm-restart recovery path).
    Restored,
}

impl Lookup {
    /// Short stable label for reports and wire frames.
    pub fn label(self) -> &'static str {
        match self {
            Lookup::Compiled => "compiled",
            Lookup::Hit => "hit",
            Lookup::Waited => "waited",
            Lookup::Restored => "restored",
        }
    }

    /// Inverse of [`Lookup::label`] (wire decoding).
    pub fn from_label(label: &str) -> Option<Lookup> {
        match label {
            "compiled" => Some(Lookup::Compiled),
            "hit" => Some(Lookup::Hit),
            "waited" => Some(Lookup::Waited),
            "restored" => Some(Lookup::Restored),
            _ => None,
        }
    }
}

/// A surface shared out of the registry: either a finished eager ESS or a
/// lazily materializing anytime surface whose contour bands compile as
/// sessions pull them. Clones of the lazy arm share one frontier, so a
/// band any session materializes is materialized for every peer.
#[derive(Clone)]
pub enum SharedSurface {
    /// A fully compiled surface.
    Eager(Arc<Ess>),
    /// An anytime surface still materializing band-by-band.
    Lazy(Arc<LazyEss>),
}

impl std::fmt::Debug for SharedSurface {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SharedSurface::Eager(_) => f.write_str("SharedSurface::Eager"),
            SharedSurface::Lazy(lazy) => f.debug_tuple("SharedSurface::Lazy").field(lazy).finish(),
        }
    }
}

/// Circuit-breaker phase of one fingerprint, in `/healthz` and obs terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerPhase {
    /// The fingerprint compiled successfully; lookups are served.
    Closed,
    /// The last compile failed; lookups are refused until the backoff
    /// window elapses.
    Open,
    /// The backoff window elapsed; exactly one re-probe compile is in
    /// flight, everyone else is still refused.
    HalfOpen,
}

impl BreakerPhase {
    /// Stable label for obs events and `/healthz`.
    pub fn label(&self) -> &'static str {
        match self {
            BreakerPhase::Closed => "closed",
            BreakerPhase::Open => "open",
            BreakerPhase::HalfOpen => "half_open",
        }
    }
}

/// Breaker tuning: how long an opened fingerprint backs off before its
/// half-open re-probe, and how far consecutive failures stretch it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Backoff after the first failure; doubled per consecutive failure.
    pub backoff_base: Duration,
    /// Upper bound on the backoff window.
    pub backoff_max: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            backoff_base: Duration::from_millis(100),
            backoff_max: Duration::from_secs(10),
        }
    }
}

impl BreakerConfig {
    /// The backoff window after `failures` consecutive failures
    /// (`base * 2^(failures-1)`, capped at `backoff_max`).
    fn window(&self, failures: u32) -> Duration {
        let doublings = failures.saturating_sub(1).min(16);
        self.backoff_base
            .checked_mul(1u32 << doublings)
            .map_or(self.backoff_max, |w| w.min(self.backoff_max))
    }
}

struct BreakerEntry {
    /// The failure that opened (or kept open) the breaker.
    error: RqpError,
    /// Consecutive compile failures for this fingerprint.
    failures: u32,
    /// When the next half-open re-probe is admitted (`retry_at - now` is
    /// the window currently in force).
    retry_at: Instant,
    /// A half-open re-probe compile is in flight right now.
    probing: bool,
}

enum Entry {
    /// A session is compiling this fingerprint right now.
    Pending,
    /// The compiled surface, shared by reference counting.
    Ready(Arc<Ess>),
    /// An anytime surface published after only its ladder anchors were
    /// costed; sessions pull the contour bands they need from it, and an
    /// eager lookup upgrades it to `Ready` by finishing it.
    Lazy(Arc<LazyEss>),
    /// The compile failed; the breaker refuses lookups until `retry_at`,
    /// then admits one half-open re-probe.
    Broken(BreakerEntry),
}

struct Shard {
    map: Mutex<HashMap<u64, Entry>>,
    published: Condvar,
}

impl Shard {
    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Entry>> {
        self.map.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Counter snapshot of a registry's lifetime activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Compiles actually executed (first sessions plus breaker re-probes).
    pub compiles: u64,
    /// Lookups served by an already-resident surface (or refused by an
    /// open breaker).
    pub hits: u64,
    /// Lookups that blocked on a peer's in-flight compile.
    pub waits: u64,
    /// Surfaces restored from the persistent disk tier (zero compiles).
    pub disk_hits: u64,
    /// Breaker-open transitions (failures starting/extending a backoff).
    pub breaker_opens: u64,
    /// Half-open re-probes admitted after a backoff window elapsed.
    pub breaker_reprobes: u64,
    /// Breakers closed again by a successful re-probe.
    pub breaker_closes: u64,
    /// Lookups refused instantly by an open breaker.
    pub breaker_refused: u64,
    /// Waits that returned `DeadlineExpired` instead of blocking on.
    pub expired_waits: u64,
    /// Fingerprints currently resident (ready or broken).
    pub entries: usize,
}

/// The phases a breaker moved through, in order (for drills and tests).
pub type BreakerTransition = (u64, BreakerPhase);

/// Per-fingerprint breaker state, as exported via `/healthz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerState {
    /// The fingerprint.
    pub fp: u64,
    /// Current phase.
    pub phase: BreakerPhase,
    /// Consecutive failures (0 when closed).
    pub failures: u32,
}

/// Publishes `Broken` if the compiling session unwinds before storing a
/// result, so waiters wake with an open breaker instead of blocking
/// forever (and the fingerprint stays re-probeable).
struct PendingGuard<'a> {
    reg: &'a EssRegistry,
    fp: u64,
    prior_failures: u32,
    armed: bool,
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.reg.publish_broken(
                self.fp,
                self.prior_failures,
                RqpError::Internal("ESS compile aborted mid-flight".to_string()),
            );
        }
    }
}

/// What the lookup loop decided this caller must do.
#[derive(Clone, Copy)]
enum Claim {
    /// First session for the fingerprint: read through the disk tier,
    /// then compile.
    Fresh,
    /// Half-open re-probe: compile again after `prior_failures` failures.
    Probe { prior_failures: u32 },
}

impl Claim {
    fn prior_failures(&self) -> u32 {
        match *self {
            Claim::Fresh => 0,
            Claim::Probe { prior_failures } => prior_failures,
        }
    }
}

/// Outcome of the shared lookup loop: either a resident surface, or a
/// claim obliging this caller to produce one.
enum Found {
    /// A surface is resident; serve it.
    Resident(SharedSurface, Lookup),
    /// This caller owns the (re)compile for the fingerprint.
    Claimed(Claim),
}

/// A sharded, fingerprint-keyed map of compiled ESS surfaces with
/// single-flight compilation, circuit breaking and optional persistence.
pub struct EssRegistry {
    shards: Vec<Shard>,
    cache: Option<CompileCache>,
    breaker: BreakerConfig,
    injector: Option<Arc<dyn CompileFaultInjector + Send + Sync>>,
    transitions: Mutex<Vec<BreakerTransition>>,
    compiles: AtomicU64,
    hits: AtomicU64,
    waits: AtomicU64,
    disk_hits: AtomicU64,
    breaker_opens: AtomicU64,
    breaker_reprobes: AtomicU64,
    breaker_closes: AtomicU64,
    breaker_refused: AtomicU64,
    expired_waits: AtomicU64,
}

/// Cap on the retained breaker-transition log (drills read it; a pathological
/// workload must not grow it without bound).
const MAX_TRANSITIONS: usize = 4096;

impl EssRegistry {
    /// A registry with `shards` independent lock domains (clamped to at
    /// least 1). Sessions for different fingerprints in different shards
    /// never contend on a lock.
    pub fn new(shards: usize) -> EssRegistry {
        let shards = shards.max(1);
        EssRegistry {
            shards: (0..shards)
                .map(|_| Shard { map: Mutex::new(HashMap::new()), published: Condvar::new() })
                .collect(),
            cache: None,
            breaker: BreakerConfig::default(),
            injector: None,
            transitions: Mutex::new(Vec::new()),
            compiles: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            waits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            breaker_opens: AtomicU64::new(0),
            breaker_reprobes: AtomicU64::new(0),
            breaker_closes: AtomicU64::new(0),
            breaker_refused: AtomicU64::new(0),
            expired_waits: AtomicU64::new(0),
        }
    }

    /// Attach a persistent disk tier: misses read through it, compiles
    /// write behind it, and [`EssRegistry::wipe`] becomes recoverable.
    #[must_use]
    pub fn with_cache(mut self, cache: CompileCache) -> EssRegistry {
        self.cache = Some(cache);
        self
    }

    /// Override the circuit-breaker tuning.
    #[must_use]
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> EssRegistry {
        self.breaker = breaker;
        self
    }

    /// Attach a compile-seam fault injector (chaos drills only).
    #[must_use]
    pub fn with_compile_injector(
        mut self,
        injector: Arc<dyn CompileFaultInjector + Send + Sync>,
    ) -> EssRegistry {
        self.injector = Some(injector);
        self
    }

    fn shard(&self, fp: u64) -> &Shard {
        let n = self.shards.len();
        &self.shards[(fp % n as u64) as usize]
    }

    fn note_transition(&self, fp: u64, phase: BreakerPhase) {
        let mut log = self.transitions.lock().unwrap_or_else(PoisonError::into_inner);
        if log.len() < MAX_TRANSITIONS {
            log.push((fp, phase));
        }
        drop(log);
        if rqp_obs::events_enabled() {
            rqp_obs::emit(
                rqp_obs::Event::new(rqp_obs::names::EV_BREAKER_TRANSITION)
                    .with("fingerprint", fp)
                    .with("phase", phase.label()),
            );
        }
    }

    /// Publish a `Broken` entry for `fp` after a compile failure (or
    /// unwind), stretching the backoff window per consecutive failure.
    fn publish_broken(&self, fp: u64, prior_failures: u32, error: RqpError) {
        let failures = prior_failures.saturating_add(1);
        let backoff = self.breaker.window(failures);
        let shard = self.shard(fp);
        shard.lock().insert(
            fp,
            Entry::Broken(BreakerEntry {
                error,
                failures,
                retry_at: Instant::now() + backoff,
                probing: false,
            }),
        );
        shard.published.notify_all();
        self.breaker_opens.fetch_add(1, Ordering::Relaxed);
        metrics().breaker_open.inc();
        self.note_transition(fp, BreakerPhase::Open);
    }

    /// Consult the compile-seam injector, physically corrupting the
    /// cached entry for `fp` when the schedule says so (the real
    /// quarantine path then runs end-to-end on load).
    fn strike_cache_load(&self, fp: u64) {
        let Some(injector) = &self.injector else { return };
        let Some(cache) = &self.cache else { return };
        match injector.inject(CompileSeam::CacheLoad) {
            Some(CompileFault::CorruptEntry) => {
                let path = cache.dir().join(format!("posp-{fp:016x}.rqpc"));
                if path.exists() {
                    // rqp-lint: allow(swallowed-result): best-effort chaos corruption; a failed write just means no fault fired
                    let _ = std::fs::write(&path, "rqp-posp-cache v2 CORRUPTED-BY-CHAOS\n");
                }
            }
            Some(CompileFault::SlowIo { millis }) => {
                std::thread::sleep(Duration::from_millis(millis));
            }
            _ => {}
        }
    }

    /// Run the actual compile (eager whole-grid or lazy anchor-only),
    /// letting the injector strike the compile seam first (panic,
    /// structured failure, or stall).
    fn run_compile<T>(&self, compile: impl FnOnce() -> RqpResult<T>) -> RqpResult<T> {
        if let Some(injector) = &self.injector {
            match injector.inject(CompileSeam::Compile) {
                #[allow(clippy::panic)]
                Some(CompileFault::Panic) => {
                    // rqp-lint: allow(no-panic): deterministic injected compile panic — exercises the drop-guard / breaker recovery path under seeded chaos schedules
                    panic!("injected compile panic (chaos schedule)")
                }
                Some(CompileFault::Fail) => {
                    return Err(RqpError::Internal(
                        "injected compile fault (chaos schedule)".to_string(),
                    ));
                }
                Some(CompileFault::SlowIo { millis }) => {
                    std::thread::sleep(Duration::from_millis(millis));
                }
                _ => {}
            }
        }
        compile()
    }

    /// Record the single-flight wait span, if this lookup waited.
    fn record_wait(&self, fp: u64, sw: Option<rqp_obs::Stopwatch>) {
        if let Some(sw) = sw {
            rqp_obs::current().record_span(
                rqp_obs::names::SPAN_REGISTRY_WAIT,
                rqp_obs::SpanKind::Wait,
                sw.elapsed_secs(),
                vec![("fingerprint", rqp_obs::JsonValue::from(fp))],
            );
        }
    }

    /// A successful re-probe closes the fingerprint's breaker.
    fn close_breaker(&self, fp: u64) {
        self.breaker_closes.fetch_add(1, Ordering::Relaxed);
        metrics().breaker_close.inc();
        self.note_transition(fp, BreakerPhase::Closed);
    }

    /// The shared single-flight lookup loop: serve a resident surface
    /// (eager or lazy), refuse through an open breaker, block on a peer's
    /// in-flight compile bounded by `deadline`, or claim the fingerprint
    /// for this caller (inserting `Pending` / marking the half-open
    /// probe before releasing the shard lock).
    fn resolve(
        &self,
        fp: u64,
        deadline: Deadline,
        wait_sw: &mut Option<rqp_obs::Stopwatch>,
    ) -> RqpResult<Found> {
        let m = metrics();
        let shard = self.shard(fp);
        let mut map = shard.lock();
        let claim = loop {
            match map.get(&fp) {
                None => break Claim::Fresh,
                Some(Entry::Ready(ess)) => {
                    let ess = Arc::clone(ess);
                    drop(map);
                    let lookup = self.note_resident(wait_sw.is_some());
                    return Ok(Found::Resident(SharedSurface::Eager(ess), lookup));
                }
                Some(Entry::Lazy(lazy)) => {
                    let lazy = Arc::clone(lazy);
                    drop(map);
                    let lookup = self.note_resident(wait_sw.is_some());
                    return Ok(Found::Resident(SharedSurface::Lazy(lazy), lookup));
                }
                Some(Entry::Broken(b)) => {
                    if !b.probing && Instant::now() >= b.retry_at {
                        // backoff elapsed: this caller is the one half-open
                        // re-probe; everyone else keeps getting refused
                        break Claim::Probe { prior_failures: b.failures };
                    }
                    let err = RqpError::BreakerOpen {
                        retry_in_ms: b
                            .retry_at
                            .saturating_duration_since(Instant::now())
                            .as_millis() as u64,
                        cause: b.error.to_string(),
                    };
                    drop(map);
                    self.breaker_refused.fetch_add(1, Ordering::Relaxed);
                    m.breaker_refused.inc();
                    return Err(err);
                }
                Some(Entry::Pending) => {
                    if wait_sw.is_none() {
                        *wait_sw = Some(rqp_obs::Stopwatch::start());
                        self.waits.fetch_add(1, Ordering::Relaxed);
                        m.singleflight_waits.inc();
                    }
                    // Timed wait bounded by the session deadline: a wedged
                    // peer compile costs this waiter at most its own
                    // deadline, never an unbounded hang.
                    match deadline.remaining() {
                        None => {
                            map = shard.published.wait(map).unwrap_or_else(PoisonError::into_inner);
                        }
                        Some(left) if left > Duration::ZERO => {
                            let (guard, _timeout) = shard
                                .published
                                .wait_timeout(map, left)
                                .unwrap_or_else(PoisonError::into_inner);
                            map = guard;
                            if deadline.expired() {
                                drop(map);
                                self.expired_waits.fetch_add(1, Ordering::Relaxed);
                                m.wait_deadline_expired.inc();
                                return Err(RqpError::DeadlineExpired {
                                    phase: "registry wait".to_string(),
                                });
                            }
                        }
                        Some(_) => {
                            drop(map);
                            self.expired_waits.fetch_add(1, Ordering::Relaxed);
                            m.wait_deadline_expired.inc();
                            return Err(RqpError::DeadlineExpired {
                                phase: "registry wait".to_string(),
                            });
                        }
                    }
                }
            }
        };
        // This caller owns the (re)compile: claim the fingerprint (still
        // under the shard lock), then run outside it so peers of *other*
        // fingerprints keep flowing.
        match claim {
            Claim::Fresh => {
                map.insert(fp, Entry::Pending);
            }
            Claim::Probe { .. } => {
                if let Some(Entry::Broken(b)) = map.get_mut(&fp) {
                    b.probing = true;
                }
            }
        }
        drop(map);
        if let Claim::Probe { .. } = claim {
            self.breaker_reprobes.fetch_add(1, Ordering::Relaxed);
            m.breaker_reprobe.inc();
            self.note_transition(fp, BreakerPhase::HalfOpen);
        }
        Ok(Found::Claimed(claim))
    }

    /// Read-through the persistent tier under an armed claim: a restorable
    /// full snapshot publishes `Ready` and short-circuits the compile.
    fn try_restore(&self, fp: u64, claim: Claim, guard: &mut PendingGuard<'_>) -> Option<Arc<Ess>> {
        let cache = self.cache.as_ref()?;
        self.strike_cache_load(fp);
        let ess = Arc::new(cache.load(fp).and_then(|snap| snap.restore().ok())?);
        let shard = self.shard(fp);
        let mut map = shard.lock();
        guard.armed = false;
        map.insert(fp, Entry::Ready(Arc::clone(&ess)));
        drop(map);
        shard.published.notify_all();
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
        metrics().registry_disk_hits.inc();
        if matches!(claim, Claim::Probe { .. }) {
            self.close_breaker(fp);
        }
        Some(ess)
    }

    /// Fetch the surface for `fp`, compiling it with `compile` if this is
    /// the first session to ask. Concurrent callers for the same
    /// fingerprint block until the one compile publishes — at most until
    /// `deadline` lapses. An open breaker refuses instantly with
    /// [`RqpError::BreakerOpen`]; once its backoff window elapses, exactly
    /// one caller re-probes. With a disk tier attached, misses first try
    /// to restore from disk ([`Lookup::Restored`]) before compiling. A
    /// fingerprint resident as a lazy anytime surface is upgraded in
    /// place: its remaining bands are materialized (reusing everything
    /// already compiled) and the finished surface replaces the entry.
    ///
    /// # Errors
    /// [`RqpError::DeadlineExpired`] if `deadline` lapsed while waiting on
    /// a peer; [`RqpError::BreakerOpen`] while a breaker refuses the
    /// fingerprint; otherwise the compile's own error (which opens the
    /// breaker).
    pub fn get_or_compile(
        &self,
        fp: u64,
        deadline: Deadline,
        compile: impl FnOnce() -> RqpResult<Ess>,
    ) -> RqpResult<(Arc<Ess>, Lookup)> {
        let m = metrics();
        let mut wait_sw: Option<rqp_obs::Stopwatch> = None;
        let claim = match self.resolve(fp, deadline, &mut wait_sw) {
            Ok(Found::Resident(SharedSurface::Eager(ess), lookup)) => {
                self.record_wait(fp, wait_sw);
                return Ok((ess, lookup));
            }
            Ok(Found::Resident(SharedSurface::Lazy(lazy), lookup)) => {
                self.record_wait(fp, wait_sw);
                return self.upgrade(fp, &lazy, lookup);
            }
            Ok(Found::Claimed(claim)) => claim,
            Err(e) => {
                self.record_wait(fp, wait_sw);
                return Err(e);
            }
        };
        let shard = self.shard(fp);
        let prior_failures = claim.prior_failures();
        let mut guard = PendingGuard { reg: self, fp, prior_failures, armed: true };
        // Read-through: a fresh fingerprint (or a re-probe after cache
        // corruption) may be restorable from the persistent tier without
        // paying a compile at all — the warm-restart recovery path.
        if let Some(ess) = self.try_restore(fp, claim, &mut guard) {
            self.record_wait(fp, wait_sw);
            return Ok((ess, Lookup::Restored));
        }
        self.compiles.fetch_add(1, Ordering::Relaxed);
        m.registry_misses.inc();
        let result = self.run_compile(compile);
        guard.armed = false;
        let out = match result {
            Ok(ess) => {
                let ess = Arc::new(ess);
                let mut map = shard.lock();
                map.insert(fp, Entry::Ready(Arc::clone(&ess)));
                drop(map);
                shard.published.notify_all();
                if matches!(claim, Claim::Probe { .. }) {
                    self.close_breaker(fp);
                }
                // Write-behind: persist outside every lock; a store failure
                // only costs the next restart a recompile.
                if let Some(cache) = &self.cache {
                    // rqp-lint: allow(swallowed-result): best-effort write-behind persistence; a store failure only costs a recompile
                    let _ = cache.store(fp, &PospSnapshot::capture(&ess));
                }
                Ok((ess, Lookup::Compiled))
            }
            Err(e) => {
                self.publish_broken(fp, prior_failures, e.clone());
                Err(e)
            }
        };
        self.record_wait(fp, wait_sw);
        out
    }

    /// Like [`EssRegistry::get_or_compile`], but publishes an **anytime**
    /// surface: the single-flight window covers only the ladder anchors
    /// of [`LazyEss::begin`] (two optimizer calls), after which every
    /// peer holds the same [`LazyEss`] and pulls exactly the contour
    /// bands its own discovery needs — peers wait per band on the shared
    /// frontier, never for a whole-grid compile. A fingerprint already
    /// resident eagerly is served as [`SharedSurface::Eager`]; a finished
    /// snapshot in the disk tier restores eagerly ([`Lookup::Restored`])
    /// rather than starting over lazily. Breaker, deadline, wipe and
    /// single-flight semantics are identical to the eager path.
    ///
    /// # Errors
    /// As [`EssRegistry::get_or_compile`]; a failed `begin` opens the
    /// fingerprint's breaker.
    pub fn get_or_lazy(
        &self,
        fp: u64,
        deadline: Deadline,
        begin: impl FnOnce() -> RqpResult<Arc<LazyEss>>,
    ) -> RqpResult<(SharedSurface, Lookup)> {
        let m = metrics();
        let mut wait_sw: Option<rqp_obs::Stopwatch> = None;
        let claim = match self.resolve(fp, deadline, &mut wait_sw) {
            Ok(Found::Resident(surface, lookup)) => {
                self.record_wait(fp, wait_sw);
                return Ok((surface, lookup));
            }
            Ok(Found::Claimed(claim)) => claim,
            Err(e) => {
                self.record_wait(fp, wait_sw);
                return Err(e);
            }
        };
        let shard = self.shard(fp);
        let prior_failures = claim.prior_failures();
        let mut guard = PendingGuard { reg: self, fp, prior_failures, armed: true };
        if let Some(ess) = self.try_restore(fp, claim, &mut guard) {
            self.record_wait(fp, wait_sw);
            return Ok((SharedSurface::Eager(ess), Lookup::Restored));
        }
        self.compiles.fetch_add(1, Ordering::Relaxed);
        m.registry_misses.inc();
        let result = self.run_compile(begin);
        guard.armed = false;
        let out = match result {
            Ok(lazy) => {
                let mut map = shard.lock();
                map.insert(fp, Entry::Lazy(Arc::clone(&lazy)));
                drop(map);
                shard.published.notify_all();
                if matches!(claim, Claim::Probe { .. }) {
                    self.close_breaker(fp);
                }
                Ok((SharedSurface::Lazy(lazy), Lookup::Compiled))
            }
            Err(e) => {
                self.publish_broken(fp, prior_failures, e.clone());
                Err(e)
            }
        };
        self.record_wait(fp, wait_sw);
        out
    }

    /// Materialize a resident lazy surface into a finished [`Ess`] and
    /// publish it as `Ready`. Bands already compiled are reused, and
    /// [`LazyEss::finish`] single-flights concurrent upgraders
    /// internally, so the remaining work is paid once. The first caller
    /// to swap the entry is accounted as the compile (and pays the
    /// write-behind); everyone else keeps their original lookup kind.
    fn upgrade(
        &self,
        fp: u64,
        lazy: &Arc<LazyEss>,
        lookup: Lookup,
    ) -> RqpResult<(Arc<Ess>, Lookup)> {
        match lazy.finish() {
            Ok(ess) => {
                let shard = self.shard(fp);
                let mut map = shard.lock();
                let first = matches!(map.get(&fp), Some(Entry::Lazy(_)));
                if first {
                    map.insert(fp, Entry::Ready(Arc::clone(&ess)));
                }
                drop(map);
                shard.published.notify_all();
                if first {
                    self.compiles.fetch_add(1, Ordering::Relaxed);
                    metrics().registry_misses.inc();
                    if let Some(cache) = &self.cache {
                        // rqp-lint: allow(swallowed-result): best-effort write-behind persistence; a store failure only costs a recompile
                        let _ = cache.store(fp, &PospSnapshot::capture(&ess));
                    }
                    Ok((ess, Lookup::Compiled))
                } else {
                    Ok((ess, lookup))
                }
            }
            Err(e) => {
                self.publish_broken(fp, 0, e.clone());
                Err(e)
            }
        }
    }

    fn note_resident(&self, waited: bool) -> Lookup {
        let m = metrics();
        if waited {
            Lookup::Waited
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            m.registry_hits.inc();
            Lookup::Hit
        }
    }

    /// Drop every in-memory entry (the crash-recovery drill's "process
    /// restart"). Counters and the breaker-transition log survive; with a
    /// disk tier attached, previously-compiled fingerprints restore from
    /// disk on their next lookup with zero recompiles. In-flight compiles
    /// are unaffected: they republish their entry when they finish. Lazy
    /// anytime surfaces are dropped like any other entry — sessions
    /// already holding the `Arc` keep pulling bands, but the next lookup
    /// starts fresh.
    pub fn wipe(&self) {
        for shard in &self.shards {
            shard.lock().clear();
            shard.published.notify_all();
        }
    }

    /// Lifetime counters plus the resident-entry count.
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            compiles: self.compiles.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            breaker_opens: self.breaker_opens.load(Ordering::Relaxed),
            breaker_reprobes: self.breaker_reprobes.load(Ordering::Relaxed),
            breaker_closes: self.breaker_closes.load(Ordering::Relaxed),
            breaker_refused: self.breaker_refused.load(Ordering::Relaxed),
            expired_waits: self.expired_waits.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().len()).sum(),
        }
    }

    /// Current breaker phase of every resident fingerprint (for
    /// `/healthz` and drills), sorted by fingerprint for stable output.
    pub fn breaker_states(&self) -> Vec<BreakerState> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let map = shard.lock();
            for (&fp, entry) in map.iter() {
                let (phase, failures) = match entry {
                    Entry::Ready(_) | Entry::Lazy(_) => (BreakerPhase::Closed, 0),
                    Entry::Pending => continue,
                    Entry::Broken(b) => (
                        if b.probing { BreakerPhase::HalfOpen } else { BreakerPhase::Open },
                        b.failures,
                    ),
                };
                out.push(BreakerState { fp, phase, failures });
            }
        }
        out.sort_by_key(|s| s.fp);
        out
    }

    /// The ordered breaker-phase transition log (capped; drills assert
    /// exact sequences against it).
    pub fn breaker_transitions(&self) -> Vec<BreakerTransition> {
        self.transitions.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Number of resident fingerprints (ready or broken).
    pub fn len(&self) -> usize {
        self.stats().entries
    }

    /// Whether no fingerprint is resident yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_ess::EssConfig;
    use rqp_optimizer::Optimizer;
    use rqp_qplan::CostModel;
    use rqp_workloads::Workload;

    fn compile_example() -> RqpResult<Ess> {
        let w = Workload::q91(2)?;
        let opt = Optimizer::new(&w.catalog, &w.query, CostModel::default());
        Ess::compile_cached(&opt, EssConfig { resolution: 6, ..Default::default() }, None)
    }

    /// A breaker config with a backoff short enough for tests but long
    /// enough that an un-slept test never crosses it by accident.
    fn test_breaker() -> BreakerConfig {
        BreakerConfig {
            backoff_base: Duration::from_millis(40),
            backoff_max: Duration::from_secs(2),
        }
    }

    #[test]
    fn second_lookup_is_a_hit_on_the_same_surface() {
        let reg = EssRegistry::new(4);
        let (a, l1) = reg.get_or_compile(42, Deadline::none(), compile_example).unwrap();
        let (b, l2) =
            reg.get_or_compile(42, Deadline::none(), || panic!("must not recompile")).unwrap();
        assert_eq!(l1, Lookup::Compiled);
        assert_eq!(l2, Lookup::Hit);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = reg.stats();
        assert_eq!((stats.compiles, stats.hits, stats.entries), (1, 1, 1));
    }

    #[test]
    fn failures_open_the_breaker_and_refuse_within_backoff() {
        let reg = EssRegistry::new(1).with_breaker(test_breaker());
        let boom = || Err(RqpError::Config("no".into()));
        assert!(reg.get_or_compile(7, Deadline::none(), boom).is_err());
        // inside the backoff window: refused instantly, no recompile
        let err = reg.get_or_compile(7, Deadline::none(), || panic!("must not retry")).unwrap_err();
        match err {
            RqpError::BreakerOpen { cause, .. } => assert!(cause.contains("no"), "{cause}"),
            other => panic!("expected BreakerOpen, got {other}"),
        }
        let stats = reg.stats();
        assert_eq!(stats.compiles, 1);
        assert_eq!(stats.breaker_opens, 1);
        assert_eq!(stats.breaker_refused, 1);
    }

    #[test]
    fn the_breaker_reprobes_after_backoff_and_closes_on_success() {
        let reg = EssRegistry::new(1).with_breaker(test_breaker());
        assert!(reg
            .get_or_compile(11, Deadline::none(), || Err(RqpError::Config("transient".into())))
            .is_err());
        std::thread::sleep(Duration::from_millis(60));
        // backoff elapsed: this lookup is the half-open re-probe and heals
        // the fingerprint
        let (_, lookup) = reg.get_or_compile(11, Deadline::none(), compile_example).unwrap();
        assert_eq!(lookup, Lookup::Compiled);
        let stats = reg.stats();
        assert_eq!(stats.compiles, 2);
        assert_eq!(stats.breaker_reprobes, 1);
        assert_eq!(stats.breaker_closes, 1);
        let phases: Vec<_> =
            reg.breaker_transitions().into_iter().map(|(_, p)| p.label()).collect();
        assert_eq!(phases, vec!["open", "half_open", "closed"]);
        // and later sessions hit the healed surface
        let (_, l2) =
            reg.get_or_compile(11, Deadline::none(), || panic!("must not recompile")).unwrap();
        assert_eq!(l2, Lookup::Hit);
    }

    #[test]
    fn consecutive_failures_stretch_the_backoff_exponentially() {
        let cfg = test_breaker();
        assert_eq!(cfg.window(1), Duration::from_millis(40));
        assert_eq!(cfg.window(2), Duration::from_millis(80));
        assert_eq!(cfg.window(3), Duration::from_millis(160));
        assert_eq!(cfg.window(30), Duration::from_secs(2), "capped at backoff_max");
    }

    #[test]
    fn a_panicking_compile_opens_the_breaker_instead_of_wedging() {
        let reg = Arc::new(EssRegistry::new(1).with_breaker(test_breaker()));
        let r2 = Arc::clone(&reg);
        let h = std::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = r2.get_or_compile(9, Deadline::none(), || panic!("chaotic compile"));
            }));
        });
        h.join().unwrap();
        // The guard opened the breaker; later sessions get a structured
        // refusal, not a hang — and the fingerprint can heal.
        let err = reg.get_or_compile(9, Deadline::none(), || panic!("must not retry")).unwrap_err();
        match err {
            RqpError::BreakerOpen { cause, .. } => assert!(cause.contains("aborted"), "{cause}"),
            other => panic!("expected BreakerOpen, got {other}"),
        }
        std::thread::sleep(Duration::from_millis(60));
        let (_, lookup) = reg.get_or_compile(9, Deadline::none(), compile_example).unwrap();
        assert_eq!(lookup, Lookup::Compiled);
    }

    #[test]
    fn a_stalled_peer_compile_cannot_block_a_waiter_past_its_deadline() {
        let reg = Arc::new(EssRegistry::new(1));
        let r2 = Arc::clone(&reg);
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let compiler = std::thread::spawn(move || {
            let _ = r2.get_or_compile(5, Deadline::none(), move || {
                // deliberately stalled compile: holds Pending until released
                let _ = release_rx.recv();
                compile_example()
            });
        });
        // give the compiler time to claim Pending
        std::thread::sleep(Duration::from_millis(30));
        let started = Instant::now();
        let err = reg
            .get_or_compile(5, Deadline::within(Duration::from_millis(100)), || {
                panic!("waiter must not compile")
            })
            .unwrap_err();
        let waited = started.elapsed();
        assert!(
            matches!(err, RqpError::DeadlineExpired { .. }),
            "expected DeadlineExpired, got {err}"
        );
        assert!(
            waited < Duration::from_secs(2),
            "timed wait should return promptly, took {waited:?}"
        );
        assert_eq!(reg.stats().expired_waits, 1);
        release_tx.send(()).unwrap();
        compiler.join().unwrap();
        // once the stalled compile finally publishes, lookups are hits
        let (_, lookup) =
            reg.get_or_compile(5, Deadline::none(), || panic!("must not recompile")).unwrap();
        assert_eq!(lookup, Lookup::Hit);
    }

    fn begin_example() -> RqpResult<Arc<LazyEss>> {
        let w = Workload::q91(2)?;
        LazyEss::begin(
            &w.catalog,
            &w.query,
            CostModel::default(),
            EssConfig { resolution: 6, ..Default::default() },
        )
    }

    #[test]
    fn lazy_lookups_share_one_anytime_surface() {
        let reg = EssRegistry::new(2);
        let (s1, l1) = reg.get_or_lazy(21, Deadline::none(), begin_example).unwrap();
        let (s2, l2) =
            reg.get_or_lazy(21, Deadline::none(), || panic!("must not begin again")).unwrap();
        assert_eq!(l1, Lookup::Compiled);
        assert_eq!(l2, Lookup::Hit);
        let (SharedSurface::Lazy(a), SharedSurface::Lazy(b)) = (&s1, &s2) else {
            panic!("expected two lazy surfaces");
        };
        assert!(Arc::ptr_eq(a, b), "peers must share one frontier");
        // nothing beyond the anchors was compiled just by publishing
        assert_eq!(a.bands_compiled(), 0);
        // a peer pulling band 1 materializes bands 0..=1 for everyone
        b.compile_through(1);
        assert!(a.bands_compiled() >= 2);
        assert!(a.bands_compiled() < a.num_bands(), "upper bands stay unmaterialized");
    }

    #[test]
    fn an_eager_lookup_upgrades_a_resident_lazy_surface() {
        let reg = EssRegistry::new(1);
        let (_, l1) = reg.get_or_lazy(13, Deadline::none(), begin_example).unwrap();
        assert_eq!(l1, Lookup::Compiled);
        // the eager path finishes the lazy surface instead of recompiling
        let (ess, l2) =
            reg.get_or_compile(13, Deadline::none(), || panic!("must not recompile")).unwrap();
        assert_eq!(l2, Lookup::Compiled, "the upgrader is accounted as the compile");
        let eager = compile_example().unwrap();
        assert_eq!(ess.posp.num_plans(), eager.posp.num_plans());
        for cell in eager.grid().cells() {
            assert_eq!(ess.posp.cost(cell).to_bits(), eager.posp.cost(cell).to_bits());
        }
        // afterwards the fingerprint is an ordinary eager hit, both ways
        let (_, l3) =
            reg.get_or_compile(13, Deadline::none(), || panic!("must not recompile")).unwrap();
        assert_eq!(l3, Lookup::Hit);
        let (s, l4) =
            reg.get_or_lazy(13, Deadline::none(), || panic!("must not begin again")).unwrap();
        assert_eq!(l4, Lookup::Hit);
        assert!(matches!(s, SharedSurface::Eager(_)));
    }

    #[test]
    fn a_failed_lazy_begin_opens_the_breaker() {
        let reg = EssRegistry::new(1).with_breaker(test_breaker());
        assert!(reg
            .get_or_lazy(17, Deadline::none(), || Err(RqpError::Config("no anchors".into())))
            .is_err());
        let err = reg.get_or_lazy(17, Deadline::none(), || panic!("must not retry")).unwrap_err();
        assert!(matches!(err, RqpError::BreakerOpen { .. }), "expected BreakerOpen, got {err}");
        // the same breaker refuses the eager path too
        let err =
            reg.get_or_compile(17, Deadline::none(), || panic!("must not retry")).unwrap_err();
        assert!(matches!(err, RqpError::BreakerOpen { .. }));
        assert_eq!(reg.stats().breaker_opens, 1);
    }

    #[test]
    fn wipe_clears_lazy_entries() {
        let reg = EssRegistry::new(2);
        let (s, _) = reg.get_or_lazy(31, Deadline::none(), begin_example).unwrap();
        assert_eq!(reg.len(), 1);
        reg.wipe();
        assert!(reg.is_empty());
        // a session that already held the Arc keeps working after the wipe
        if let SharedSurface::Lazy(lazy) = s {
            lazy.compile_through(0);
            assert!(lazy.bands_compiled() >= 1);
        }
        // and the next lazy lookup begins fresh
        let (_, l) = reg.get_or_lazy(31, Deadline::none(), begin_example).unwrap();
        assert_eq!(l, Lookup::Compiled);
    }

    #[test]
    fn wipe_recovers_from_the_disk_tier_with_zero_recompiles() {
        let dir = std::env::temp_dir().join(format!("rqp-reg-wipe-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = CompileCache::new(&dir).unwrap();
        let reg = EssRegistry::new(2).with_cache(cache);
        let (_, l1) = reg.get_or_compile(3, Deadline::none(), compile_example).unwrap();
        assert_eq!(l1, Lookup::Compiled);
        let compiles_before = reg.stats().compiles;

        reg.wipe();
        assert!(reg.is_empty());
        let (_, l2) =
            reg.get_or_compile(3, Deadline::none(), || panic!("must not recompile")).unwrap();
        assert_eq!(l2, Lookup::Restored, "post-wipe lookup must restore from disk");
        let stats = reg.stats();
        assert_eq!(stats.compiles, compiles_before, "zero recompiles after the wipe");
        assert_eq!(stats.disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
