//! The transport seam: one submit/drain contract with an in-process and
//! a TCP implementation.
//!
//! [`Transport`] is the boundary [`crate::serve_workload`] drives. The
//! in-proc arm wraps a [`Server`] directly; the TCP arm
//! ([`TcpTransport`]) speaks the framed protocol in [`crate::wire`] to
//! one [`TcpServeHost`] per registry shard, routing each session to the
//! shard that owns its compile fingerprint — the same stable fingerprint
//! the in-proc [`crate::EssRegistry`] shards its locks by, lifted to the
//! process level. A workload driven through either arm produces a
//! [`ServeReport`] whose [`ServeReport::stable_render`] is
//! byte-identical (given quiet schedules), which is exactly what the
//! remote smoke test asserts.

use crate::registry::RegistryStats;
use crate::report::ServeReport;
use crate::server::{ServeConfig, Server, SessionUpdate};
use crate::session::{session_fingerprint, SessionOutcome, SessionResult, SessionSpec};
use crate::wire::{read_frame, write_frame, Frame, WireRead, WireResult, PROTOCOL_VERSION};
use rqp_catalog::{RqpError, RqpResult};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How long a transport read polls between liveness checks.
const POLL_TIMEOUT: Duration = Duration::from_millis(200);

/// Cap on a client's wait for the server to finish draining a
/// connection's sessions (compiles included, so it is generous).
const DRAIN_WAIT_CAP: Duration = Duration::from_secs(600);

/// Cap on a client's wait for the server's `Hello` greeting.
const HELLO_WAIT_CAP: Duration = Duration::from_secs(10);

/// One way to run serving sessions: submit specs, then drain into a
/// report. Implementations must keep [`Server::submit`]'s non-blocking
/// admission contract — a full queue is a structured refusal, never a
/// stall.
pub trait Transport {
    /// Submit one session.
    ///
    /// # Errors
    /// [`RqpError::Overloaded`] / [`RqpError::Config`] for structured
    /// refusals the driver records as rejected sessions;
    /// [`RqpError::Internal`] for transport failures that abort the run.
    fn submit(&mut self, spec: SessionSpec) -> RqpResult<()>;

    /// Finish every submitted session and summarize.
    ///
    /// # Errors
    /// [`RqpError::Internal`] when the transport lost the server before
    /// all results arrived.
    fn drain(self: Box<Self>) -> RqpResult<ServeReport>;
}

/// The in-process arm: a [`Server`] behind the seam.
pub struct InProcTransport {
    server: Server,
}

impl InProcTransport {
    /// Start a server with `config`.
    ///
    /// # Errors
    /// Propagates [`Server::start`] errors.
    pub fn start(config: ServeConfig) -> RqpResult<InProcTransport> {
        Ok(InProcTransport { server: Server::start(config)? })
    }
}

impl Transport for InProcTransport {
    fn submit(&mut self, spec: SessionSpec) -> RqpResult<()> {
        self.server.submit(spec)
    }

    fn drain(self: Box<Self>) -> RqpResult<ServeReport> {
        Ok(self.server.drain())
    }
}

/// A refused spec as the drain report records it.
fn rejected_result(
    id: usize,
    query: String,
    algo: String,
    outcome: SessionOutcome,
) -> SessionResult {
    SessionResult {
        id,
        query,
        algo: algo.to_ascii_lowercase(),
        outcome,
        subopt: None,
        steps: 0,
        wall: Duration::ZERO,
        lookup: None,
        trace_render: None,
        total_cost: None,
        spans: Vec::new(),
    }
}

/// Expand session-file entries into specs, submit them all through the
/// transport, and drain. Structured refusals ([`RqpError::Overloaded`],
/// or [`RqpError::Config`] from a draining server) become
/// [`SessionOutcome::Rejected`] results; the driver never blocks on a
/// full queue and never silently drops a session.
///
/// # Errors
/// Propagates transport-level ([`RqpError::Internal`]) failures; every
/// per-session failure is reported in the [`ServeReport`] instead.
pub fn run_entries(
    mut transport: Box<dyn Transport>,
    entries: &[rqp_workloads::SessionEntry],
) -> RqpResult<ServeReport> {
    let mut rejected = Vec::new();
    let mut next_id = 0usize;
    for entry in entries {
        for _ in 0..entry.count {
            let mut spec = SessionSpec::new(next_id, entry.query.as_str(), entry.algo.as_str());
            spec.qa = entry.qa;
            next_id += 1;
            match transport.submit(spec.clone()) {
                Ok(()) => {}
                Err(RqpError::Overloaded { .. } | RqpError::Config(_)) => {
                    rejected.push(rejected_result(
                        spec.id,
                        spec.query,
                        spec.algo,
                        SessionOutcome::Rejected,
                    ));
                }
                Err(e) => return Err(e),
            }
        }
    }
    let mut report = transport.drain()?;
    report.results.extend(rejected);
    report.results.sort_by_key(|r| r.id);
    Ok(report)
}

// ---- TCP client -------------------------------------------------------

/// Observer for live server frames (progress, rejects) as they arrive on
/// a client connection; called off the reader threads.
pub type FrameObserver = Arc<dyn Fn(&Frame) + Send + Sync>;

#[derive(Default)]
struct ConnState {
    results: Vec<SessionResult>,
    rejects: Vec<(usize, usize, usize)>,
    session_errors: Vec<(usize, String)>,
    stats: Option<RegistryStats>,
    error: Option<String>,
    done: bool,
}

struct Conn {
    stream: TcpStream,
    state: Arc<Mutex<ConnState>>,
    reader: Option<std::thread::JoinHandle<()>>,
}

/// The TCP arm of the seam: one persistent connection per shard,
/// client-side fingerprint routing, a background reader per connection
/// streaming progress and results.
pub struct TcpTransport {
    conns: Vec<Conn>,
    shards: usize,
    resolution: Option<usize>,
    fp_cache: HashMap<String, Option<u64>>,
    /// id → (query, algo), so wire-level rejections reconstruct the same
    /// result record the in-proc driver synthesizes.
    specs: HashMap<usize, (String, String)>,
    started_at: Instant,
}

impl TcpTransport {
    /// Connect to every shard of a deployment. `addrs[i]` must be the
    /// server announcing shard `i` (order is validated against each
    /// server's `Hello`); `resolution` must match the servers' grid
    /// resolution override, because the client routes by the same
    /// (query, resolution) fingerprint the servers shard their
    /// registries by.
    ///
    /// # Errors
    /// [`RqpError::Config`] on connection failure, protocol-version or
    /// shard-topology mismatch.
    pub fn connect(addrs: &[String], resolution: Option<usize>) -> RqpResult<TcpTransport> {
        Self::connect_with(addrs, resolution, None)
    }

    /// [`connect`](Self::connect) with a live [`FrameObserver`] invoked
    /// for every streamed progress/reject frame.
    ///
    /// # Errors
    /// Same as [`connect`](Self::connect).
    pub fn connect_with(
        addrs: &[String],
        resolution: Option<usize>,
        observer: Option<FrameObserver>,
    ) -> RqpResult<TcpTransport> {
        if addrs.is_empty() {
            return Err(RqpError::Config("connect needs at least one server address".to_string()));
        }
        let mut conns = Vec::with_capacity(addrs.len());
        for (want_shard, addr) in addrs.iter().enumerate() {
            let mut stream = TcpStream::connect(addr)
                .map_err(|e| RqpError::Config(format!("cannot connect {addr}: {e}")))?;
            stream.set_nodelay(true).ok();
            stream
                .set_read_timeout(Some(POLL_TIMEOUT))
                .map_err(|e| RqpError::Config(format!("socket setup {addr}: {e}")))?;
            let hello = wait_for_hello(&mut stream, addr)?;
            let Frame::Hello { version, shard, shards } = hello else {
                return Err(RqpError::Config(format!("{addr} did not greet with hello")));
            };
            if version != PROTOCOL_VERSION {
                return Err(RqpError::Config(format!(
                    "{addr} speaks protocol v{version}, this client speaks v{PROTOCOL_VERSION}"
                )));
            }
            if shards != addrs.len() || shard != want_shard {
                return Err(RqpError::Config(format!(
                    "{addr} announces shard {shard}/{shards} but was given as shard \
                     {want_shard}/{} — pass every shard's address, in shard order",
                    addrs.len()
                )));
            }
            let state = Arc::new(Mutex::new(ConnState::default()));
            let reader_stream = stream
                .try_clone()
                .map_err(|e| RqpError::Config(format!("socket clone {addr}: {e}")))?;
            let reader_state = Arc::clone(&state);
            let reader_observer = observer.clone();
            let reader = std::thread::Builder::new()
                .name(format!("rqp-wire-client-{want_shard}"))
                .spawn(move || client_reader_loop(reader_stream, &reader_state, reader_observer))
                .map_err(|e| RqpError::Internal(format!("cannot spawn reader: {e}")))?;
            conns.push(Conn { stream, state, reader: Some(reader) });
        }
        Ok(TcpTransport {
            conns,
            shards: addrs.len(),
            resolution,
            fp_cache: HashMap::new(),
            specs: HashMap::new(),
            started_at: Instant::now(),
        })
    }

    /// Which shard owns `query`: its compile fingerprint modulo the shard
    /// count — the same routing the in-proc registry uses for its lock
    /// shards. Unknown workloads (no fingerprint) route by a stable hash
    /// of the name so the owning server can fail them with the exact
    /// in-proc error.
    fn route(&mut self, query: &str) -> usize {
        let resolution = self.resolution;
        let fp = *self
            .fp_cache
            .entry(query.to_string())
            .or_insert_with(|| session_fingerprint(query, resolution).ok());
        let h = fp.unwrap_or_else(|| fnv1a(query.as_bytes()));
        (h % self.shards as u64) as usize
    }

    /// Ask every shard to shut its whole process down after draining
    /// (deployment control; servers honor it via
    /// [`TcpServeHost::run_until_shutdown`]).
    ///
    /// # Errors
    /// [`RqpError::Internal`] on a socket failure.
    pub fn send_shutdown(&mut self) -> RqpResult<()> {
        for conn in &mut self.conns {
            write_frame(&mut conn.stream, &Frame::Shutdown)?;
        }
        Ok(())
    }
}

/// FNV-1a over bytes (routing fallback for unknown workload names).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn wait_for_hello(stream: &mut TcpStream, addr: &str) -> RqpResult<Frame> {
    let deadline = Instant::now() + HELLO_WAIT_CAP;
    loop {
        match read_frame(stream)? {
            WireRead::Frame(f) => return Ok(f),
            WireRead::Closed => {
                return Err(RqpError::Config(format!("{addr} closed before greeting")));
            }
            WireRead::Idle => {
                if Instant::now() > deadline {
                    return Err(RqpError::Config(format!("{addr} sent no hello within 10s")));
                }
            }
        }
    }
}

fn client_reader_loop(
    mut stream: TcpStream,
    state: &Arc<Mutex<ConnState>>,
    observer: Option<FrameObserver>,
) {
    // Every guard below is dropped before the next socket read — no lock
    // is held across blocking IO.
    fn lock(state: &Mutex<ConnState>) -> std::sync::MutexGuard<'_, ConnState> {
        state.lock().unwrap_or_else(PoisonError::into_inner)
    }
    loop {
        // Read first, lock after: no guard is ever held across socket IO.
        let read = read_frame(&mut stream);
        match read {
            Ok(WireRead::Idle) => {}
            Ok(WireRead::Closed) => {
                let mut st = lock(state);
                if st.stats.is_none() && st.error.is_none() {
                    st.error = Some("server closed before sending stats".to_string());
                }
                st.done = true;
                return;
            }
            Ok(WireRead::Frame(frame)) => {
                if let Some(obs) = &observer {
                    obs(&frame);
                }
                match frame {
                    Frame::Progress { .. } => {}
                    Frame::Result(w) => {
                        let decoded = w.into_result();
                        let mut st = lock(state);
                        match decoded {
                            Ok(r) => st.results.push(r),
                            Err(e) => st.error = Some(e.to_string()),
                        }
                    }
                    Frame::Reject { id, queue_depth, cap } => {
                        lock(state).rejects.push((id, queue_depth, cap));
                    }
                    Frame::Error { id: Some(id), message, .. } => {
                        lock(state).session_errors.push((id, message));
                    }
                    Frame::Error { id: None, code, message } => {
                        let mut st = lock(state);
                        st.error = Some(format!("server error [{code}]: {message}"));
                        st.done = true;
                        return;
                    }
                    Frame::Stats(s) => {
                        let mut st = lock(state);
                        st.stats = Some(s);
                        st.done = true;
                        return;
                    }
                    other => {
                        let mut st = lock(state);
                        st.error =
                            Some(format!("unexpected server frame {:?}", frame_name(&other)));
                        st.done = true;
                        return;
                    }
                }
            }
            Err(e) => {
                let mut st = lock(state);
                st.error = Some(e.to_string());
                st.done = true;
                return;
            }
        }
    }
}

fn frame_name(f: &Frame) -> &'static str {
    match f {
        Frame::Hello { .. } => "hello",
        Frame::Session { .. } => "session",
        Frame::Progress { .. } => "progress",
        Frame::Result(_) => "result",
        Frame::Reject { .. } => "reject",
        Frame::Error { .. } => "error",
        Frame::Bye => "bye",
        Frame::Stats(_) => "stats",
        Frame::Shutdown => "shutdown",
    }
}

impl Transport for TcpTransport {
    fn submit(&mut self, spec: SessionSpec) -> RqpResult<()> {
        let shard = self.route(&spec.query);
        self.specs.insert(spec.id, (spec.query.clone(), spec.algo.clone()));
        let conn = self
            .conns
            .get_mut(shard)
            .ok_or_else(|| RqpError::Internal(format!("no connection for shard {shard}")))?;
        write_frame(
            &mut conn.stream,
            &Frame::Session {
                id: spec.id,
                query: spec.query,
                algo: spec.algo,
                qa: spec.qa,
                seed: spec.seed,
            },
        )
    }

    fn drain(mut self: Box<Self>) -> RqpResult<ServeReport> {
        for conn in &mut self.conns {
            write_frame(&mut conn.stream, &Frame::Bye)?;
        }
        let deadline = Instant::now() + DRAIN_WAIT_CAP;
        for conn in &mut self.conns {
            loop {
                {
                    let st = conn.state.lock().unwrap_or_else(PoisonError::into_inner);
                    if st.done {
                        break;
                    }
                }
                if Instant::now() > deadline {
                    return Err(RqpError::Internal(
                        "server did not finish draining within the wait cap".to_string(),
                    ));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        let mut results = Vec::new();
        let mut registry = RegistryStats::default();
        for conn in &mut self.conns {
            if let Some(handle) = conn.reader.take() {
                let _ = handle.join();
            }
            let mut st = conn.state.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(err) = st.error.take() {
                return Err(RqpError::Internal(err));
            }
            results.append(&mut st.results);
            for (id, queue_depth, cap) in st.rejects.drain(..) {
                let (query, algo) = self
                    .specs
                    .get(&id)
                    .cloned()
                    .unwrap_or_else(|| (format!("session-{id}"), "unknown".to_string()));
                let _ = (queue_depth, cap); // carried on the wire; the record keeps the outcome
                results.push(rejected_result(id, query, algo, SessionOutcome::Rejected));
            }
            for (id, message) in st.session_errors.drain(..) {
                let (query, algo) = self
                    .specs
                    .get(&id)
                    .cloned()
                    .unwrap_or_else(|| (format!("session-{id}"), "unknown".to_string()));
                results.push(rejected_result(id, query, algo, SessionOutcome::Failed(message)));
            }
            if let Some(s) = st.stats {
                registry.compiles += s.compiles;
                registry.hits += s.hits;
                registry.waits += s.waits;
                registry.disk_hits += s.disk_hits;
                registry.breaker_opens += s.breaker_opens;
                registry.breaker_reprobes += s.breaker_reprobes;
                registry.breaker_closes += s.breaker_closes;
                registry.breaker_refused += s.breaker_refused;
                registry.expired_waits += s.expired_waits;
                registry.entries += s.entries;
            }
        }
        results.sort_by_key(|r| r.id);
        Ok(ServeReport { results, registry, drained: 0, wall: self.started_at.elapsed() })
    }
}

// ---- TCP server host --------------------------------------------------

/// A [`Server`] published on a TCP listener: accepts connections, decodes
/// [`Frame::Session`]s into [`Server::submit_with`] calls, streams
/// progress/result frames back, and maps admission refusals onto
/// [`Frame::Reject`]. One host is one registry shard (`--shard K/N`); an
/// unsharded deployment is the single shard `0/1`.
pub struct TcpServeHost {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shutdown_flag: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    server: Option<Arc<Server>>,
}

impl TcpServeHost {
    /// Bind `addr` (port 0 picks a free port), start the serving pool,
    /// and begin accepting wire connections. `shard` is `(index, count)`;
    /// `None` means the sole shard of an unsharded deployment.
    ///
    /// # Errors
    /// [`RqpError::Config`] for an invalid shard spec or unbindable
    /// address; propagates [`Server::start`] errors.
    pub fn bind(
        addr: &str,
        config: ServeConfig,
        shard: Option<(usize, usize)>,
    ) -> RqpResult<TcpServeHost> {
        let (k, n) = shard.unwrap_or((0, 1));
        if n == 0 || k >= n {
            return Err(RqpError::Config(format!(
                "shard spec {k}/{n} is invalid: need 0 <= index < count"
            )));
        }
        let resolution = config.resolution;
        let server = Arc::new(Server::start(config)?);
        let listener = TcpListener::bind(addr)
            .map_err(|e| RqpError::Config(format!("wire cannot bind {addr}: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| RqpError::Config(format!("wire listener setup: {e}")))?;
        let local =
            listener.local_addr().map_err(|e| RqpError::Config(format!("wire local addr: {e}")))?;
        let stop = Arc::new(AtomicBool::new(false));
        let shutdown_flag = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let stop = Arc::clone(&stop);
            let shutdown_flag = Arc::clone(&shutdown_flag);
            let conns = Arc::clone(&conns);
            let server = Arc::clone(&server);
            std::thread::Builder::new()
                .name("rqp-wire-accept".to_string())
                .spawn(move || {
                    accept_loop(
                        &listener,
                        &stop,
                        &shutdown_flag,
                        &conns,
                        &server,
                        (k, n),
                        resolution,
                    );
                })
                .map_err(|e| RqpError::Internal(format!("cannot spawn accept loop: {e}")))?
        };
        Ok(TcpServeHost {
            addr: local,
            stop,
            shutdown_flag,
            accept: Some(accept),
            conns,
            server: Some(server),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a client asked the whole process to shut down
    /// ([`Frame::Shutdown`]).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_flag.load(Ordering::SeqCst)
    }

    /// Serve until a client sends [`Frame::Shutdown`], then stop and
    /// return the drain report — the long-lived `rqp serve --listen`
    /// main loop.
    ///
    /// # Errors
    /// Propagates [`TcpServeHost::stop`] failures.
    pub fn run_until_shutdown(self) -> RqpResult<ServeReport> {
        while !self.shutdown_requested() {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.stop()
    }

    /// Stop accepting, cut idle connections, finish every admitted
    /// session, and return the drain report.
    ///
    /// # Errors
    /// [`RqpError::Internal`] if a connection thread leaked and still
    /// holds the server (the drain cannot run twice).
    pub fn stop(mut self) -> RqpResult<ServeReport> {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let handles =
            std::mem::take(&mut *self.conns.lock().unwrap_or_else(PoisonError::into_inner));
        for handle in handles {
            let _ = handle.join();
        }
        let server = self
            .server
            .take()
            .ok_or_else(|| RqpError::Internal("server already stopped".to_string()))?;
        match Arc::try_unwrap(server) {
            Ok(server) => Ok(server.drain()),
            Err(_) => Err(RqpError::Internal(
                "a connection thread still holds the server; cannot drain".to_string(),
            )),
        }
    }
}

impl Drop for TcpServeHost {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let handles =
            std::mem::take(&mut *self.conns.lock().unwrap_or_else(PoisonError::into_inner));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: &TcpListener,
    stop: &Arc<AtomicBool>,
    shutdown_flag: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    server: &Arc<Server>,
    shard: (usize, usize),
    resolution: Option<usize>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let server = Arc::clone(server);
                let stop = Arc::clone(stop);
                let shutdown_flag = Arc::clone(shutdown_flag);
                let spawned = std::thread::Builder::new().name("rqp-wire-conn".to_string()).spawn(
                    move || {
                        conn_loop(stream, &server, shard, resolution, &stop, &shutdown_flag);
                    },
                );
                match spawned {
                    Ok(handle) => {
                        conns.lock().unwrap_or_else(PoisonError::into_inner).push(handle);
                    }
                    // Thread exhaustion: refuse this connection, keep serving.
                    Err(_) => crate::obs::metrics().wire_frame_errors.inc(),
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            // transient accept errors (aborted handshakes etc.): keep serving
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// One wire connection, single-threaded by design: the loop alternates
/// between flushing the session-update channel to the socket and reading
/// the next client frame (with a short timeout so the stop flag is
/// honored). No lock is ever held across socket IO.
fn conn_loop(
    mut stream: TcpStream,
    server: &Arc<Server>,
    (k, n): (usize, usize),
    resolution: Option<usize>,
    stop: &Arc<AtomicBool>,
    shutdown_flag: &Arc<AtomicBool>,
) {
    let m = crate::obs::metrics();
    if stream.set_nodelay(true).is_err()
        || stream.set_read_timeout(Some(POLL_TIMEOUT)).is_err()
        || write_frame(
            &mut stream,
            &Frame::Hello { version: PROTOCOL_VERSION, shard: k, shards: n },
        )
        .is_err()
    {
        return;
    }
    let (tx, rx) = std::sync::mpsc::channel::<SessionUpdate>();
    let mut accepted = 0usize;
    let mut finished = 0usize;
    let mut bye = false;
    let mut fp_cache: HashMap<String, Option<u64>> = HashMap::new();
    loop {
        // Flush pending live updates (progress + terminal results).
        // try_recv never yields Disconnected: this thread owns `tx`.
        while let Ok(update) = rx.try_recv() {
            let frame = update_frame(update);
            let terminal = matches!(frame, Frame::Result(_));
            if write_frame(&mut stream, &frame).is_err() {
                return;
            }
            if terminal {
                finished += 1;
            }
        }
        if bye && finished == accepted {
            // Everything this connection submitted has its terminal
            // frame; answer the drain with the shard's registry stats.
            write_frame(&mut stream, &Frame::Stats(server.registry_stats())).ok();
            return;
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
        if bye {
            std::thread::sleep(Duration::from_millis(10));
            continue;
        }
        match read_frame(&mut stream) {
            Ok(WireRead::Idle) => {}
            Ok(WireRead::Closed) => return,
            Ok(WireRead::Frame(Frame::Session { id, query, algo, qa, seed })) => {
                let spec = SessionSpec { id, query, algo, qa, seed };
                // Routing check: a session whose fingerprint belongs to a
                // different shard is a client bug, refused loudly. Unknown
                // workloads have no fingerprint; they pass through and fail
                // in-session with the exact in-proc error.
                let fp = *fp_cache
                    .entry(spec.query.clone())
                    .or_insert_with(|| session_fingerprint(&spec.query, resolution).ok());
                if let Some(fp) = fp {
                    let owner = (fp % n as u64) as usize;
                    if owner != k {
                        let frame = Frame::Error {
                            id: Some(spec.id),
                            code: "config".to_string(),
                            message: format!(
                                "session {} reached shard {k}/{n} but its fingerprint \
                                 {fp:016x} is owned by shard {owner}",
                                spec.id
                            ),
                        };
                        if write_frame(&mut stream, &frame).is_err() {
                            return;
                        }
                        continue;
                    }
                }
                match server.submit_with(spec.clone(), Some(tx.clone())) {
                    Ok(()) => {
                        accepted += 1;
                        m.wire_sessions.inc();
                    }
                    Err(e) => {
                        if matches!(e, RqpError::Overloaded { .. }) {
                            m.wire_rejected.inc();
                        }
                        let frame = Frame::from_submit_error(&spec, &e);
                        if write_frame(&mut stream, &frame).is_err() {
                            return;
                        }
                    }
                }
            }
            Ok(WireRead::Frame(Frame::Bye)) => bye = true,
            Ok(WireRead::Frame(Frame::Shutdown)) => {
                shutdown_flag.store(true, Ordering::SeqCst);
            }
            Ok(WireRead::Frame(other)) => {
                m.wire_frame_errors.inc();
                let frame = Frame::Error {
                    id: None,
                    code: "config".to_string(),
                    message: format!("unexpected client frame {:?}", frame_name(&other)),
                };
                write_frame(&mut stream, &frame).ok();
                return;
            }
            Err(e) => {
                // Framing is lost (hostile prefix, undecodable payload,
                // mid-frame stall): answer best-effort, drop the
                // connection, keep the server alive.
                m.wire_frame_errors.inc();
                let frame =
                    Frame::Error { id: None, code: "config".to_string(), message: e.to_string() };
                write_frame(&mut stream, &frame).ok();
                return;
            }
        }
    }
}

/// A live [`SessionUpdate`] as its wire frame.
fn update_frame(update: SessionUpdate) -> Frame {
    match update {
        SessionUpdate::Started { id } => Frame::Progress {
            id,
            phase: "started".to_string(),
            lookup: None,
            step: None,
            budget_bits: None,
            spent_bits: None,
            completed: None,
        },
        SessionUpdate::Surface { id, lookup } => Frame::Progress {
            id,
            phase: "surface".to_string(),
            lookup: Some(lookup.label().to_string()),
            step: None,
            budget_bits: None,
            spent_bits: None,
            completed: None,
        },
        SessionUpdate::Step { id, step, budget, spent, completed } => Frame::Progress {
            id,
            phase: "step".to_string(),
            lookup: None,
            step: Some(step),
            budget_bits: Some(budget.to_bits()),
            spent_bits: Some(spent.to_bits()),
            completed: Some(completed),
        },
        SessionUpdate::Finished(result) => {
            Frame::Result(Box::new(WireResult::from_result(&result)))
        }
    }
}
