//! Resilience drills: scripted end-to-end failure exercises with their
//! invariants checked, runnable from CI (`make drill`), the CLI
//! (`rqp serve --drill …`) and the test suite.
//!
//! * [`crash_recover_drill`] — compile a workload's fingerprints, wipe
//!   the in-memory registry (the simulated crash), re-run the same
//!   workload and assert **zero recompiles**: every surface restores from
//!   the persistent disk tier, the global ESS compile counter does not
//!   move, and the post-recovery report renders byte-identically to the
//!   pre-crash one ([`ServeReport::stable_render`]).
//! * [`storm_drill`] — a seeded compile-fault and execution-fault storm
//!   over ≥ 100 sessions with per-session deadlines and graceful
//!   degradation on, asserting the resilience bounds: no session's wall
//!   clock exceeds its deadline plus a fixed grace, breaker counters stay
//!   mutually consistent, and every admitted session ends in a structured
//!   outcome.

use crate::registry::BreakerConfig;
use crate::report::ServeReport;
use crate::server::{serve_workload, ServeConfig};
use rqp_catalog::RqpResult;
use rqp_chaos::{CompileFaultConfig, FaultConfig};
use rqp_obs::names;
use rqp_workloads::SessionEntry;
use std::fmt::Write as _;
use std::path::Path;
use std::time::Duration;

/// The outcome of one scripted drill.
#[derive(Debug)]
pub struct DrillReport {
    /// Drill name (`crash-recover` | `storm`).
    pub name: &'static str,
    /// Invariant violations; empty means the drill passed.
    pub violations: Vec<String>,
    /// Human-readable progress lines.
    pub lines: Vec<String>,
}

impl DrillReport {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Render the drill's transcript and verdict.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "drill {}:", self.name);
        for line in &self.lines {
            let _ = writeln!(s, "  {line}");
        }
        if self.passed() {
            let _ = writeln!(s, "drill {} PASSED", self.name);
        } else {
            for v in &self.violations {
                let _ = writeln!(s, "  VIOLATION: {v}");
            }
            let _ =
                writeln!(s, "drill {} FAILED ({} violation(s))", self.name, self.violations.len());
        }
        s
    }
}

/// The drill workload: two distinct fingerprints, mixed algorithms.
fn drill_entries() -> Vec<SessionEntry> {
    vec![
        SessionEntry { query: "2D_Q91".to_string(), algo: "sb".to_string(), count: 3, qa: None },
        SessionEntry { query: "2D_Q91".to_string(), algo: "ab".to_string(), count: 2, qa: None },
        SessionEntry { query: "3D_Q91".to_string(), algo: "sb".to_string(), count: 3, qa: None },
    ]
}

fn drill_config(cache_dir: &Path) -> ServeConfig {
    ServeConfig {
        workers: 4,
        queue_cap: 64,
        // Coarse grids keep the drill's compiles sub-second.
        resolution: Some(6),
        cache_dir: Some(cache_dir.to_path_buf()),
        ..ServeConfig::default()
    }
}

/// The crash-recovery drill (see module docs). `cache_dir` holds the
/// persistent tier; it should start empty for a clean run.
///
/// # Errors
/// Propagates server configuration errors; invariant failures are
/// reported in the [`DrillReport`], not as an `Err`.
pub fn crash_recover_drill(cache_dir: &Path) -> RqpResult<DrillReport> {
    let mut lines = Vec::new();
    let mut violations = Vec::new();
    let entries = drill_entries();
    let distinct = 2u64; // 2D_Q91 and 3D_Q91

    // Phase 1: cold serve — every fingerprint compiles once and is
    // written behind to the disk tier.
    let report1 = serve_workload(drill_config(cache_dir), &entries)?;
    lines.push(format!(
        "cold run: {} session(s), {} compile(s), {} disk hit(s)",
        report1.results.len(),
        report1.registry.compiles,
        report1.registry.disk_hits,
    ));
    if report1.registry.compiles != distinct {
        violations.push(format!(
            "cold run compiled {} time(s) for {distinct} fingerprint(s)",
            report1.registry.compiles
        ));
    }

    // Phase 2: the crash. A fresh server with a fresh (empty) registry
    // over the same cache directory — plus a mid-run wipe for good
    // measure — must serve the same workload with zero recompiles.
    let compiles_before = rqp_obs::global().counter(names::ESS_COMPILES).get();
    let server = crate::server::Server::start(drill_config(cache_dir))?;
    let mut next_id = 0usize;
    for entry in &entries {
        for _ in 0..entry.count {
            let spec = crate::session::SessionSpec::new(
                next_id,
                entry.query.as_str(),
                entry.algo.as_str(),
            );
            next_id += 1;
            server.submit(spec)?;
            if next_id == 4 {
                // Simulated crash mid-workload: later sessions must
                // restore from disk again, still without compiling.
                server.wipe_registry();
            }
        }
    }
    let mut report2 = server.drain();
    report2.results.sort_by_key(|r| r.id);
    let compiles_after = rqp_obs::global().counter(names::ESS_COMPILES).get();
    lines.push(format!(
        "recovery run: {} session(s), {} compile(s), {} disk hit(s), \
         global ESS compile counter moved by {}",
        report2.results.len(),
        report2.registry.compiles,
        report2.registry.disk_hits,
        compiles_after - compiles_before,
    ));
    if report2.registry.compiles != 0 {
        violations.push(format!(
            "recovery run recompiled {} time(s); the disk tier must answer every miss",
            report2.registry.compiles
        ));
    }
    if compiles_after != compiles_before {
        violations.push(format!(
            "global ESS compile counter moved {} -> {} across the recovery run",
            compiles_before, compiles_after
        ));
    }
    if report2.registry.disk_hits < distinct {
        violations.push(format!(
            "only {} disk restore(s) for {distinct} fingerprint(s)",
            report2.registry.disk_hits
        ));
    }
    check_stable_reports(&report1, &report2, &mut lines, &mut violations);
    Ok(DrillReport { name: "crash-recover", violations, lines })
}

fn check_stable_reports(
    before: &ServeReport,
    after: &ServeReport,
    lines: &mut Vec<String>,
    violations: &mut Vec<String>,
) {
    let (a, b) = (before.stable_render(), after.stable_render());
    if a == b {
        lines.push("pre-crash and post-recovery reports render byte-identically".to_string());
    } else {
        violations.push(format!(
            "post-recovery report diverges from the pre-crash one:\n--- before\n{a}--- after\n{b}"
        ));
    }
}

/// Per-session deadline and grace for the storm drill. The grace absorbs
/// scheduling jitter and the post-deadline wind-down (one last-resort
/// execution per in-flight step); the bound asserted is
/// `wall ≤ deadline + grace` for every session that reached a worker.
const STORM_DEADLINE: Duration = Duration::from_secs(2);
const STORM_GRACE: Duration = Duration::from_secs(2);

/// The chaos-storm drill (see module docs): `sessions` seeded sessions
/// (≥ 100 enforced by clamping) under a mixed compile-fault and
/// execution-fault storm, with deadlines and degradation on.
///
/// # Errors
/// Propagates server configuration errors; invariant failures are
/// reported in the [`DrillReport`], not as an `Err`.
pub fn storm_drill(seed: u64, sessions: usize) -> RqpResult<DrillReport> {
    let mut lines = Vec::new();
    let mut violations = Vec::new();
    let sessions = sessions.max(100);
    let per_query = sessions / 2;
    let entries = vec![
        SessionEntry {
            query: "2D_Q91".to_string(),
            algo: "sb".to_string(),
            count: per_query,
            qa: None,
        },
        SessionEntry {
            query: "3D_Q91".to_string(),
            algo: "ab".to_string(),
            count: sessions - per_query,
            qa: None,
        },
    ];
    let config = ServeConfig {
        workers: 4,
        queue_cap: sessions,
        resolution: Some(6),
        deadline: Some(STORM_DEADLINE),
        chaos: Some(FaultConfig::storm(seed, 0.2)),
        compile_chaos: Some(CompileFaultConfig::storm(seed ^ 0xD1CE, 0.4)),
        breaker: BreakerConfig {
            backoff_base: Duration::from_millis(20),
            backoff_max: Duration::from_millis(200),
        },
        degrade: true,
        ..ServeConfig::default()
    };
    let report = serve_workload(config, &entries)?;
    let stats = &report.registry;
    lines.push(format!(
        "{} session(s): {} completed, {} degraded, {} breaker-refused, {} deadline-expired, \
         {} failed",
        report.results.len(),
        report.completed(),
        report.degraded(),
        report.breaker_refused(),
        report.count(|r| r.outcome == crate::session::SessionOutcome::DeadlineExpired),
        report.count(|r| matches!(r.outcome, crate::session::SessionOutcome::Failed(_))),
    ));
    lines.push(format!(
        "breakers: {} open(s), {} re-probe(s), {} close(s), {} refusal(s); \
         {} compile(s), {} expired wait(s)",
        stats.breaker_opens,
        stats.breaker_reprobes,
        stats.breaker_closes,
        stats.breaker_refused,
        stats.compiles,
        stats.expired_waits,
    ));

    // Bound: no session that reached a worker ran past deadline + grace.
    let bound = STORM_DEADLINE + STORM_GRACE;
    for r in &report.results {
        if r.outcome != crate::session::SessionOutcome::Rejected && r.wall > bound {
            violations.push(format!(
                "session {} ({} {}) ran {:?}, past the {:?} bound",
                r.id, r.query, r.algo, r.wall, bound
            ));
        }
    }

    // Breaker counters must be mutually consistent: every re-probe needs
    // a prior open, every close needs a prior re-probe, and refusals can
    // only happen once something opened.
    if stats.breaker_reprobes > stats.breaker_opens {
        violations.push(format!(
            "{} re-probe(s) exceed {} open(s)",
            stats.breaker_reprobes, stats.breaker_opens
        ));
    }
    if stats.breaker_closes > stats.breaker_reprobes {
        violations.push(format!(
            "{} close(s) exceed {} re-probe(s)",
            stats.breaker_closes, stats.breaker_reprobes
        ));
    }
    if stats.breaker_refused > 0 && stats.breaker_opens == 0 {
        violations.push("breaker refusals recorded without any open".to_string());
    }

    // Every admitted session must end in a structured outcome with its
    // wall clock recorded — nothing hangs, nothing is silently dropped.
    let total: usize = entries.iter().map(|e| e.count).sum();
    if report.results.len() != total {
        violations.push(format!(
            "{} result(s) for {} submitted session(s)",
            report.results.len(),
            total
        ));
    }
    Ok(DrillReport { name: "storm", violations, lines })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drill_report_renders_verdicts() {
        let pass = DrillReport { name: "storm", violations: vec![], lines: vec!["x".into()] };
        assert!(pass.passed());
        assert!(pass.render().contains("PASSED"));
        let fail = DrillReport { name: "storm", violations: vec!["bad".into()], lines: vec![] };
        assert!(!fail.passed());
        assert!(fail.render().contains("FAILED (1 violation(s))"));
    }
}
