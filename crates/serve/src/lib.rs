#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! `rqp-serve` — a concurrent multi-session discovery service over a
//! shared POSP registry.
//!
//! The paper's runtime story is per-query: compile the ESS once, then
//! discover. A serving deployment runs *many* sessions at once, and most
//! of them repeat a small set of query templates — so the expensive
//! compile (§7's repeated optimizer calls) must be shared, not repeated.
//! This crate provides:
//!
//! * [`EssRegistry`] — a sharded, fingerprint-keyed map of compiled
//!   [`rqp_ess::Ess`] surfaces with **single-flight** compilation: N
//!   simultaneous sessions for one fingerprint trigger exactly one
//!   compile, peers block on a condvar and share the resulting
//!   `Arc<Ess>`. Compile failures are cached; an unwinding compile
//!   publishes a failure instead of wedging its waiters.
//! * [`Server`] — a bounded admission queue in front of a worker-thread
//!   pool. Admission is non-blocking: beyond the queue cap,
//!   [`Server::submit`] returns the structured
//!   [`rqp_catalog::RqpError::Overloaded`] instead of stalling the
//!   caller. Per-session deadlines and suboptimality budget caps turn
//!   runaway sessions into structured outcomes; [`Server::drain`]
//!   finishes every admitted session before shutdown.
//! * [`ServeReport`] — session-level MSO/ASO per (query, algorithm)
//!   group, throughput, and latency percentiles, the serving analogue of
//!   the paper's robustness metrics.
//! * Causal tracing ([`ServeConfig::tracing`]) — each session records a
//!   deterministic span tree (session → compile/wait → step → execution,
//!   see `rqp_obs::trace`) carried in [`SessionResult::spans`], and
//!   [`TelemetryServer`] ([`ServeConfig::telemetry_addr`]) serves
//!   `/metrics`, `/healthz` and `/trace/<session>` live on the running
//!   server.
//!
//! Sessions may carry chaos fault schedules ([`ServeConfig::chaos`]);
//! faults strike a session's *executions*, never the shared registry —
//! the compiled surface is immutable behind its `Arc`.
//!
//! The **resilience tier** (see `DESIGN.md`'s failure-domain map) hardens
//! the compile path itself: per-fingerprint **circuit breakers** with
//! exponential-backoff half-open re-probes replace permanent failure
//! caching; registry waits, supervised retries and contour steps are
//! bounded by a per-session [`rqp_obs::Deadline`]; the registry reads
//! through / writes behind the persistent compile cache so a wiped
//! registry ([`Server::wipe_registry`]) recovers with **zero recompiles**;
//! and [`ServeConfig::degrade`] serves breaker-open sessions with the
//! native optimizer's plan, flagged [`SessionOutcome::Degraded`]. The
//! [`drill`] module packages the crash-recovery and chaos-storm drills
//! that assert those invariants end to end.
//!
//! ```
//! use rqp_serve::{serve_workload, ServeConfig};
//! use rqp_workloads::parse_session_file;
//!
//! let entries = parse_session_file("2D_Q91 sb x4\n2D_Q91 ab x4\n").unwrap();
//! let report = serve_workload(ServeConfig::default(), &entries).unwrap();
//! assert_eq!(report.completed(), 8);
//! assert_eq!(report.registry.compiles, 1); // one fingerprint, one compile
//! ```

pub mod drill;
pub mod obs;
pub mod registry;
pub mod report;
pub mod server;
pub mod session;
pub mod telemetry;
pub mod transport;
pub mod wire;

pub use drill::{crash_recover_drill, storm_drill, DrillReport};
pub use obs::register_metrics;
pub use registry::{
    BreakerConfig, BreakerPhase, BreakerState, EssRegistry, Lookup, RegistryStats, SharedSurface,
};
pub use report::{GroupStats, ServeReport};
pub use server::{serve_workload, ServeConfig, Server, SessionUpdate, UpdateSink};
pub use session::{
    algo_by_name, resolve_qa, session_fingerprint, SessionOutcome, SessionResult, SessionSpec,
};
pub use telemetry::{HealthSource, TelemetryServer, TraceStore};
pub use transport::{
    run_entries, FrameObserver, InProcTransport, TcpServeHost, TcpTransport, Transport,
};
pub use wire::{
    read_frame, write_frame, Frame, WireRead, WireResult, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
