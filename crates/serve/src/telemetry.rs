//! A dependency-free live telemetry endpoint for a running server.
//!
//! [`TelemetryServer`] binds a plain `std::net::TcpListener` and answers
//! three `GET` routes with minimal HTTP/1.1:
//!
//! * `/metrics`  — the global registry in Prometheus text exposition format
//! * `/healthz`  — liveness (`ok`) plus the registry's circuit-breaker
//!   summary when a [`HealthSource`] is attached
//! * `/trace/<session-id>` — the session's causal trace as Chrome
//!   trace-event JSON (populated once the session finishes)
//!
//! The accept loop runs on one background thread with a non-blocking
//! listener so [`TelemetryServer::stop`] never blocks on a quiet socket.
//! Responses are built whole and written once; every connection is
//! `Connection: close`, so no keep-alive state exists to leak.

use rqp_catalog::{RqpError, RqpResult};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Finished-session traces, keyed by session id, rendered as Chrome
/// trace-event JSON. Shared between the serve workers (producers) and the
/// telemetry endpoint (consumer).
#[derive(Default)]
pub struct TraceStore {
    map: Mutex<HashMap<usize, String>>,
}

impl TraceStore {
    /// An empty store.
    pub fn new() -> TraceStore {
        TraceStore::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<usize, String>> {
        self.map.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Publish a session's rendered trace.
    pub fn insert(&self, session: usize, chrome_json: String) {
        self.lock().insert(session, chrome_json);
    }

    /// The rendered trace for a session, if it has finished.
    pub fn get(&self, session: usize) -> Option<String> {
        self.lock().get(&session).cloned()
    }

    /// Session ids with a published trace, ascending.
    pub fn ids(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.lock().keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

/// Extra `/healthz` detail rendered per request (the serving layer
/// attaches the registry's circuit-breaker summary). The returned text is
/// appended after the `ok` liveness line.
pub type HealthSource = Arc<dyn Fn() -> String + Send + Sync>;

/// The live telemetry endpoint. Dropping (or [`stop`](Self::stop)ping) it
/// shuts the accept loop down and joins the thread.
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryServer {
    /// Bind `addr` (e.g. `127.0.0.1:9921`; port 0 picks a free port) and
    /// start answering telemetry requests against `traces`.
    ///
    /// `read_timeout` bounds how long one connection may dribble its
    /// request head before being cut off (a slow-loris guard; the old
    /// hardcoded 500 ms is now [`crate::ServeConfig::telemetry_read_timeout`]).
    ///
    /// # Errors
    /// [`RqpError::Config`] when the address cannot be bound or the spawn
    /// fails.
    pub fn start(
        addr: &str,
        traces: Arc<TraceStore>,
        health: Option<HealthSource>,
        read_timeout: Duration,
    ) -> RqpResult<TelemetryServer> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| RqpError::Config(format!("telemetry cannot bind {addr}: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| RqpError::Config(format!("telemetry listener setup: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| RqpError::Config(format!("telemetry local addr: {e}")))?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("rqp-telemetry".to_string())
            .spawn(move || {
                accept_loop(&listener, &stop_flag, &traces, health.as_ref(), read_timeout)
            })
            .map_err(|e| RqpError::Config(format!("cannot spawn telemetry thread: {e}")))?;
        Ok(TelemetryServer { addr: local, stop, handle: Some(handle) })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shut the accept loop down and join its thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    traces: &Arc<TraceStore>,
    health: Option<&HealthSource>,
    read_timeout: Duration,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => handle_connection(stream, traces, health, read_timeout),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            // transient accept errors (aborted handshakes etc.): keep serving
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Handle one connection, counting any socket error in
/// `rqp_serve_telemetry_errors_total` instead of dropping it on the floor:
/// a scrape endpoint silently failing to answer looks exactly like a
/// wedged server, so the failure itself must be observable.
fn handle_connection(
    stream: TcpStream,
    traces: &Arc<TraceStore>,
    health: Option<&HealthSource>,
    read_timeout: Duration,
) {
    if try_handle(stream, traces, health, read_timeout).is_err() {
        crate::obs::metrics().telemetry_errors.inc();
    }
}

/// Read the request head (bounded), route it, and write one response.
fn try_handle(
    mut stream: TcpStream,
    traces: &Arc<TraceStore>,
    health: Option<&HealthSource>,
    read_timeout: Duration,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(read_timeout))?;
    stream.set_nodelay(true)?;
    let mut buf = [0u8; 4096];
    let mut head = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= 16 * 1024 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request_line = match std::str::from_utf8(&head).ok().and_then(|s| s.lines().next()) {
        Some(line) => line.to_string(),
        None => return Ok(()),
    };
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => return Ok(()),
    };
    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain; charset=utf-8", "only GET is served\n".to_string())
    } else {
        route(path, traces, health)
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Resolve a `GET` path to `(status, content-type, body)`.
fn route(
    path: &str,
    traces: &Arc<TraceStore>,
    health: Option<&HealthSource>,
) -> (&'static str, &'static str, String) {
    const OK: &str = "200 OK";
    const NOT_FOUND: &str = "404 Not Found";
    const TEXT: &str = "text/plain; charset=utf-8";
    match path {
        "/metrics" => {
            // version 0.0.4 is the Prometheus text exposition format version,
            // not ours
            (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                rqp_obs::global().render_prometheus(),
            )
        }
        "/healthz" => {
            let mut body = "ok\n".to_string();
            if let Some(source) = health {
                body.push_str(&source());
            }
            (OK, TEXT, body)
        }
        "/trace" | "/trace/" => {
            let ids = traces.ids().iter().map(usize::to_string).collect::<Vec<_>>().join(", ");
            (OK, "application/json", format!("{{\"sessions\": [{ids}]}}\n"))
        }
        _ => match path.strip_prefix("/trace/").and_then(|id| id.parse::<usize>().ok()) {
            Some(id) => match traces.get(id) {
                Some(json) => (OK, "application/json", json),
                None => (NOT_FOUND, TEXT, format!("no trace for session {id}\n")),
            },
            None => (NOT_FOUND, TEXT, "routes: /metrics /healthz /trace/<session>\n".to_string()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_metrics_healthz_and_traces() {
        let traces = Arc::new(TraceStore::new());
        traces.insert(3, "{\"traceEvents\": []}".to_string());
        let health_source: HealthSource =
            Arc::new(|| "breakers: 1 fingerprint(s), 1 open, 0 half_open\n".to_string());
        let srv = TelemetryServer::start(
            "127.0.0.1:0",
            Arc::clone(&traces),
            Some(health_source),
            Duration::from_millis(500),
        )
        .unwrap();
        let addr = srv.local_addr();

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        assert!(health.contains("\r\n\r\nok\n"), "{health}");
        assert!(health.contains("breakers: 1 fingerprint(s), 1 open"), "{health}");

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200"), "{metrics}");

        let index = get(addr, "/trace");
        assert!(index.contains("\"sessions\": [3]"), "{index}");
        let trace = get(addr, "/trace/3");
        assert!(trace.contains("traceEvents"), "{trace}");
        let missing = get(addr, "/trace/99");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        let bogus = get(addr, "/nope");
        assert!(bogus.starts_with("HTTP/1.1 404"), "{bogus}");
        srv.stop();
    }

    #[test]
    fn healthz_without_a_source_is_bare_liveness() {
        let traces = Arc::new(TraceStore::new());
        let srv = TelemetryServer::start(
            "127.0.0.1:0",
            Arc::clone(&traces),
            None,
            Duration::from_millis(500),
        )
        .unwrap();
        let health = get(srv.local_addr(), "/healthz");
        assert!(health.ends_with("ok\n"), "{health}");
        srv.stop();
    }

    #[test]
    fn responses_carry_content_length_and_connection_close() {
        // Clients that don't read to EOF (curl keep-alive, framed probes)
        // need an exact Content-Length and an explicit close.
        let traces = Arc::new(TraceStore::new());
        let srv = TelemetryServer::start(
            "127.0.0.1:0",
            Arc::clone(&traces),
            None,
            Duration::from_millis(500),
        )
        .unwrap();
        let response = get(srv.local_addr(), "/healthz");
        let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
        assert!(head.contains("Connection: close"), "{head}");
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("Content-Length header")
            .parse()
            .expect("numeric Content-Length");
        assert_eq!(len, body.len(), "Content-Length must match the body byte count");
        srv.stop();
    }
}
