//! Instrumentation handles for the serving layer: admission, queueing,
//! session outcomes and shared-registry effectiveness.

use rqp_obs::{default_compile_buckets, global, names, Counter, Gauge, Histogram};
use std::sync::{Arc, OnceLock};

pub(crate) struct ServeMetrics {
    /// `rqp_serve_sessions_active`
    pub sessions_active: Arc<Gauge>,
    /// `rqp_serve_queue_depth`
    pub queue_depth: Arc<Gauge>,
    /// `rqp_serve_admitted_total`
    pub admitted: Arc<Counter>,
    /// `rqp_serve_rejected_total`
    pub rejected: Arc<Counter>,
    /// `rqp_serve_completed_total`
    pub completed: Arc<Counter>,
    /// `rqp_serve_failed_total`
    pub failed: Arc<Counter>,
    /// `rqp_serve_drained_total`
    pub drained: Arc<Counter>,
    /// `rqp_serve_session_seconds`
    pub session_seconds: Arc<Histogram>,
    /// `rqp_serve_registry_hits_total`
    pub registry_hits: Arc<Counter>,
    /// `rqp_serve_registry_misses_total`
    pub registry_misses: Arc<Counter>,
    /// `rqp_serve_singleflight_waits_total`
    pub singleflight_waits: Arc<Counter>,
    /// `rqp_serve_telemetry_errors_total`
    pub telemetry_errors: Arc<Counter>,
    /// `rqp_serve_registry_disk_hits_total`
    pub registry_disk_hits: Arc<Counter>,
    /// `rqp_serve_breaker_open_total`
    pub breaker_open: Arc<Counter>,
    /// `rqp_serve_breaker_reprobe_total`
    pub breaker_reprobe: Arc<Counter>,
    /// `rqp_serve_breaker_close_total`
    pub breaker_close: Arc<Counter>,
    /// `rqp_serve_breaker_refused_total`
    pub breaker_refused: Arc<Counter>,
    /// `rqp_serve_wait_deadline_expired_total`
    pub wait_deadline_expired: Arc<Counter>,
    /// `rqp_serve_degraded_total`
    pub degraded: Arc<Counter>,
    /// `rqp_serve_invalid_spec_total`
    pub invalid_spec: Arc<Counter>,
    /// `rqp_serve_wire_sessions_total`
    pub wire_sessions: Arc<Counter>,
    /// `rqp_serve_wire_rejections_total`
    pub wire_rejected: Arc<Counter>,
    /// `rqp_serve_wire_frame_errors_total`
    pub wire_frame_errors: Arc<Counter>,
}

pub(crate) fn metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let g = global();
        // Sessions include a cold ESS compile in the worst case, so they get
        // compile-scale buckets rather than per-plan latency buckets.
        let buckets = default_compile_buckets();
        ServeMetrics {
            sessions_active: g.gauge(names::SERVE_SESSIONS_ACTIVE),
            queue_depth: g.gauge(names::SERVE_QUEUE_DEPTH),
            admitted: g.counter(names::SERVE_ADMITTED),
            rejected: g.counter(names::SERVE_REJECTED),
            completed: g.counter(names::SERVE_COMPLETED),
            failed: g.counter(names::SERVE_FAILED),
            drained: g.counter(names::SERVE_DRAINED),
            session_seconds: g.histogram(names::SERVE_SESSION_SECONDS, &buckets),
            registry_hits: g.counter(names::SERVE_REGISTRY_HITS),
            registry_misses: g.counter(names::SERVE_REGISTRY_MISSES),
            singleflight_waits: g.counter(names::SERVE_SINGLEFLIGHT_WAITS),
            telemetry_errors: g.counter(names::SERVE_TELEMETRY_ERRORS),
            registry_disk_hits: g.counter(names::SERVE_REGISTRY_DISK_HITS),
            breaker_open: g.counter(names::SERVE_BREAKER_OPEN),
            breaker_reprobe: g.counter(names::SERVE_BREAKER_REPROBE),
            breaker_close: g.counter(names::SERVE_BREAKER_CLOSE),
            breaker_refused: g.counter(names::SERVE_BREAKER_REFUSED),
            wait_deadline_expired: g.counter(names::SERVE_WAIT_DEADLINE_EXPIRED),
            degraded: g.counter(names::SERVE_DEGRADED),
            invalid_spec: g.counter(names::SERVE_INVALID_SPEC),
            wire_sessions: g.counter(names::SERVE_WIRE_SESSIONS),
            wire_rejected: g.counter(names::SERVE_WIRE_REJECTED),
            wire_frame_errors: g.counter(names::SERVE_WIRE_FRAME_ERRORS),
        }
    })
}

/// Pre-register the serve metric series (at zero) in the global registry,
/// so snapshots taken before any session still list them.
pub fn register_metrics() {
    let _ = metrics();
}
