//! Adversarial-input tests for the self-contained JSON codec.
//!
//! `rqp_obs::json` now fronts untrusted network sockets (the serve wire
//! protocol decodes frame payloads with it), so every malformed input —
//! truncation at any byte, single-byte mutation, pathological nesting,
//! over-long tokens, broken escapes, raw invalid UTF-8 — must come back
//! as a structured `JsonError`, never a panic, hang, or unbounded
//! allocation. The sweeps below are deterministic and exhaustive over
//! their input families rather than sampled, so failures reproduce.

use rqp_obs::json::{parse, parse_bytes};
use rqp_obs::JsonValue;

/// A representative document exercising every value kind, escapes,
/// surrogate pairs, nested containers, and both integer ranges.
const DOC: &str = concat!(
    r#"{"arr":[1,-2,3.5,1e-3,18446744073709551615,true,false,null],"#,
    r#""obj":{"inner":{"deep":[{"k":"v"}]}},"#,
    r#""str":"tab\tquote\"slash\\unicodeépair😀","#,
    r#""neg":-9223372036854775808}"#
);

#[test]
fn baseline_document_parses() {
    let v = parse(DOC).expect("intact document parses");
    assert_eq!(v["arr"][0], JsonValue::Int(1));
    assert_eq!(v["str"].as_str().map(str::len), Some(33));
}

#[test]
fn truncation_at_every_byte_is_a_structured_error() {
    // Every proper prefix is malformed: either an incomplete value or a
    // bare scalar followed by nothing where the document expects more.
    for cut in 0..DOC.len() {
        if !DOC.is_char_boundary(cut) {
            continue;
        }
        let prefix = &DOC[..cut];
        match parse(prefix) {
            Err(_) => {}
            Ok(v) => panic!("prefix of {cut} bytes unexpectedly parsed: {v:?}"),
        }
    }
}

#[test]
fn single_byte_mutations_never_panic() {
    // Flip each byte through a hostile palette; the result must be a
    // clean Ok (some mutations keep the document valid, e.g. inside a
    // string) or a structured Err — never a panic or abort.
    let bytes = DOC.as_bytes();
    for i in 0..bytes.len() {
        for evil in [0x00u8, 0x1f, b'"', b'\\', b'{', b']', 0x7f, 0xc3, 0xff] {
            let mut mutated = bytes.to_vec();
            mutated[i] = evil;
            let _ = parse_bytes(&mutated);
        }
    }
}

#[test]
fn deep_nesting_is_rejected_not_overflowed() {
    // 10_000 levels would blow the stack in a naive recursive parser;
    // the codec must stop at its depth limit with a structured error.
    for (open, close) in [("[", "]"), ("{\"k\":", "}")] {
        let deep = open.repeat(10_000) + &close.repeat(10_000);
        let err = parse(&deep).expect_err("pathological nesting must fail");
        assert!(err.to_string().contains("deep"), "unexpected error: {err}");
    }
}

#[test]
fn just_inside_depth_limit_still_parses() {
    let depth = 128;
    let doc = "[".repeat(depth) + "0" + &"]".repeat(depth);
    parse(&doc).expect("nesting at the documented limit parses");
    let doc = "[".repeat(depth + 1) + "0" + &"]".repeat(depth + 1);
    parse(&doc).expect_err("one level past the limit fails");
}

#[test]
fn over_long_tokens_fail_or_parse_without_hanging() {
    // A 1 MiB digit string is a legal (huge) number for the lexer to
    // chew through; a 1 MiB unterminated string must error at EOF.
    let digits = "9".repeat(1 << 20);
    assert!(parse(&digits).is_err(), "1 MiB of digits overflows every numeric type");
    let mut unterminated = String::with_capacity((1 << 20) + 1);
    unterminated.push('"');
    unterminated.push_str(&"a".repeat(1 << 20));
    let err = parse(&unterminated).expect_err("unterminated string");
    assert!(err.to_string().contains("unterminated") || err.to_string().contains("string"));
}

#[test]
fn broken_escapes_are_structured_errors() {
    for bad in [
        r#""\x""#,           // unknown escape
        r#""\u12""#,         // truncated \u
        r#""\u12zz""#,       // non-hex \u
        r#""\ud800""#,       // lone high surrogate
        r#""\ude00""#,       // lone low surrogate
        r#""\ud800A""#,      // high surrogate + non-surrogate
        r#""\ud800\ud800""#, // high surrogate twice
        "\"\\",              // escape at EOF
    ] {
        let err = parse(bad).expect_err(bad);
        assert!(err.to_string().contains("byte"), "error should carry an offset: {err}");
    }
}

#[test]
fn raw_invalid_utf8_is_a_structured_error() {
    for bad in [
        &[b'"', 0xff, b'"'][..],
        &[0xc3][..],                         // truncated 2-byte sequence
        &[b'[', 0xed, 0xa0, 0x80, b']'][..], // surrogate encoded as UTF-8
        &[b'{', 0x80, b'}'][..],             // bare continuation byte
    ] {
        let err = parse_bytes(bad).expect_err("invalid UTF-8 must fail");
        assert!(err.to_string().contains("UTF-8"), "unexpected error: {err}");
    }
}

#[test]
fn parse_bytes_matches_parse_on_valid_input() {
    let a = parse(DOC).expect("str parse");
    let b = parse_bytes(DOC.as_bytes()).expect("byte parse");
    assert_eq!(a, b);
}

#[test]
fn control_characters_inside_strings_are_rejected() {
    for c in 0u8..0x20 {
        let doc = [b'"', b'a', c, b'b', b'"'];
        assert!(parse_bytes(&doc).is_err(), "raw control byte {c:#x} must be rejected");
    }
}
