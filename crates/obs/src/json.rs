//! A small, self-contained JSON codec.
//!
//! The observability artifacts — JSONL events, metrics snapshots, POSP
//! snapshot files — must encode to real JSON and parse back regardless of
//! which `serde_json` the workspace was built against: the offline build
//! environment substitutes a typecheck-only stub whose `to_string`
//! degenerates to `"{}"` and whose `from_str` always errors. This module
//! takes the same approach as the hand-rolled snapshot codec in
//! `crates/ess/src/cache.rs`: own the byte format outright, with no
//! external dependency that can be stubbed out from under it.
//!
//! Numbers are written so that decode(encode(x)) == x:
//!
//! * integers that fit `i64` are canonically [`JsonValue::Int`] (both the
//!   `From` constructors and the parser normalize, so `2u64` and a parsed
//!   `"2"` compare equal);
//! * integers above `i64::MAX` are [`JsonValue::UInt`];
//! * floats are written with Rust's shortest-round-trip formatting (always
//!   containing `.`, `e` or `E`, so they re-parse as floats);
//! * non-finite floats have no JSON representation and encode as `null`
//!   (the same degradation `serde_json` applies). Callers that cannot
//!   afford the loss must encode a sentinel themselves — see
//!   [`crate::MetricsSnapshot`], which round-trips non-finite gauges as
//!   `"Infinity"` / `"-Infinity"` / `"NaN"` strings.

use std::collections::BTreeMap;
use std::fmt;

/// Object representation: sorted keys, deterministic output.
pub type Map = BTreeMap<String, JsonValue>;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer in `i64` range (the canonical integer variant).
    Int(i64),
    /// An integer above `i64::MAX`.
    UInt(u64),
    /// A (finite) float.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object.
    Object(Map),
}

/// A parse or encode failure, with the byte offset where parsing stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
    offset: Option<usize>,
}

impl JsonError {
    /// An error not tied to an input position (encode-side failures).
    pub fn new(msg: impl Into<String>) -> JsonError {
        JsonError { msg: msg.into(), offset: None }
    }

    fn at(msg: impl Into<String>, offset: usize) -> JsonError {
        JsonError { msg: msg.into(), offset: Some(offset) }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(o) => write!(f, "{} at byte {o}", self.msg),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for JsonError {}

macro_rules! from_small_int {
    ($($t:ty),*) => {$(
        impl From<$t> for JsonValue {
            fn from(x: $t) -> JsonValue { JsonValue::Int(x as i64) }
        }
    )*}
}
from_small_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl From<u64> for JsonValue {
    fn from(x: u64) -> JsonValue {
        match i64::try_from(x) {
            Ok(i) => JsonValue::Int(i),
            Err(_) => JsonValue::UInt(x),
        }
    }
}

impl From<usize> for JsonValue {
    fn from(x: usize) -> JsonValue {
        JsonValue::from(x as u64)
    }
}

impl From<f64> for JsonValue {
    fn from(x: f64) -> JsonValue {
        JsonValue::Num(x)
    }
}

impl From<f32> for JsonValue {
    fn from(x: f32) -> JsonValue {
        JsonValue::Num(f64::from(x))
    }
}

impl From<bool> for JsonValue {
    fn from(x: bool) -> JsonValue {
        JsonValue::Bool(x)
    }
}

impl From<&str> for JsonValue {
    fn from(x: &str) -> JsonValue {
        JsonValue::Str(x.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(x: String) -> JsonValue {
        JsonValue::Str(x)
    }
}

static NULL: JsonValue = JsonValue::Null;

impl std::ops::Index<&str> for JsonValue {
    type Output = JsonValue;
    fn index(&self, key: &str) -> &JsonValue {
        match self {
            JsonValue::Object(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for JsonValue {
    type Output = JsonValue;
    fn index(&self, i: usize) -> &JsonValue {
        match self {
            JsonValue::Array(v) => v.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl JsonValue {
    /// The value as `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::Num(f) => Some(f),
            JsonValue::Int(i) => Some(i as f64),
            JsonValue::UInt(u) => Some(u as f64),
            _ => None,
        }
    }

    /// The value as `u64` (non-negative integer variants).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::Int(i) => u64::try_from(i).ok(),
            JsonValue::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// The value as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            JsonValue::Int(i) => Some(i),
            JsonValue::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            JsonValue::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object map.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Compact encoding.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty encoding (two-space indent, like `serde_json`).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        use std::fmt::Write as _;
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            JsonValue::Num(f) => write_f64(out, *f),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            JsonValue::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

/// Shortest-round-trip float formatting. `{:?}` always yields `.`/`e`
/// notation for finite floats (`3.0`, `12.5`, `1e-7`), so the output
/// re-parses as a float, and Rust guarantees parse(format(x)) == x.
fn write_f64(out: &mut String, f: f64) {
    use std::fmt::Write as _;
    if f.is_finite() {
        let _ = write!(out, "{f:?}");
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
/// Returns [`JsonError`] (with a byte offset) on malformed input, trailing
/// garbage, or nesting deeper than 128 levels.
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::at("trailing characters after JSON value", p.pos));
    }
    Ok(v)
}

/// Parse one JSON document from raw bytes (e.g. a framed network payload).
///
/// Network input is not guaranteed to be UTF-8, so the decode failure is a
/// structured [`JsonError`] (offset = first invalid byte) rather than a
/// caller-side conversion panic. Valid UTF-8 behaves exactly like
/// [`parse`].
///
/// # Errors
/// Returns [`JsonError`] on invalid UTF-8, malformed JSON, trailing
/// garbage, or nesting deeper than 128 levels.
pub fn parse_bytes(bytes: &[u8]) -> Result<JsonValue, JsonError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| JsonError::at("input is not valid UTF-8", e.valid_up_to()))?;
    parse(text)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn consume(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(format!("expected {:?}", b as char), self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(JsonError::at(format!("expected {word:?}"), self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::at("nesting too deep", self.pos));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => {
                Err(JsonError::at(format!("unexpected character {:?}", b as char), self.pos))
            }
            None => Err(JsonError::at("unexpected end of input", self.pos)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(JsonError::at("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.consume(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(JsonError::at("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.consume(b'"')?;
        let mut out = String::new();
        let start = self.pos;
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(JsonError::at("unterminated string", start));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                // RFC 8259: control characters must arrive escaped; raw
                // ones in network input are a framing/injection smell.
                _ if b < 0x20 => {
                    return Err(JsonError::at(
                        format!("raw control character {b:#04x} in string"),
                        self.pos,
                    ));
                }
                _ => {
                    // consume one UTF-8 scalar (input is &str, so valid)
                    let tail = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(tail)
                        .map_err(|_| JsonError::at("invalid UTF-8", self.pos))?;
                    let Some(c) = s.chars().next() else {
                        return Err(JsonError::at("unterminated string", start));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let Some(&b) = self.bytes.get(self.pos) else {
            return Err(JsonError::at("unterminated escape", self.pos));
        };
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'u' => return self.unicode_escape(),
            _ => return Err(JsonError::at(format!("bad escape \\{}", b as char), self.pos - 1)),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let at = self.pos;
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| JsonError::at("truncated \\u escape", at))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| JsonError::at("bad \\u escape", at))?;
        self.pos += 4;
        Ok(code)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let at = self.pos;
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // high surrogate: require a following \uXXXX low surrogate
            if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                return Err(JsonError::at("lone high surrogate", at));
            }
            self.pos += 2;
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(JsonError::at("invalid low surrogate", at));
            }
            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(code).ok_or_else(|| JsonError::at("bad surrogate pair", at))
        } else {
            char::from_u32(hi).ok_or_else(|| JsonError::at("bad \\u escape", at))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::at("invalid number", start))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(u));
            }
        }
        text.parse::<f64>()
            .ok()
            .filter(|f| f.is_finite())
            .map(JsonValue::Num)
            .ok_or_else(|| JsonError::at(format!("bad number {text:?}"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &JsonValue) -> JsonValue {
        parse(&v.to_json()).expect("round-trip parse")
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            JsonValue::Null,
            JsonValue::Bool(true),
            JsonValue::Bool(false),
            JsonValue::Int(0),
            JsonValue::Int(-42),
            JsonValue::Int(i64::MAX),
            JsonValue::Int(i64::MIN),
            JsonValue::UInt(u64::MAX),
            JsonValue::Num(12.5),
            JsonValue::Num(3.0),
            JsonValue::Num(1e-300),
            JsonValue::Num(-0.0),
            JsonValue::Str("".into()),
            JsonValue::Str("hé \"quoted\" \\ line\nbreak\ttab".into()),
        ] {
            assert_eq!(roundtrip(&v), v, "{}", v.to_json());
        }
    }

    #[test]
    fn float_bits_survive_exactly() {
        for f in [1.0 / 3.0, 0.1 + 0.2, f64::MIN_POSITIVE, 1.7976931348623157e308] {
            let JsonValue::Num(back) = roundtrip(&JsonValue::Num(f)) else {
                panic!("float parsed as non-float");
            };
            assert_eq!(back.to_bits(), f.to_bits());
        }
    }

    #[test]
    fn integral_floats_stay_floats() {
        // 3.0 encodes as "3.0", not "3", so the variant survives
        assert_eq!(JsonValue::Num(3.0).to_json(), "3.0");
        assert_eq!(roundtrip(&JsonValue::Num(3.0)), JsonValue::Num(3.0));
    }

    #[test]
    fn integers_normalize_to_int() {
        // From<u64> and the parser agree on the canonical variant
        assert_eq!(JsonValue::from(2u64), JsonValue::Int(2));
        assert_eq!(parse("2").unwrap(), JsonValue::Int(2));
        assert_eq!(parse("18446744073709551615").unwrap(), JsonValue::UInt(u64::MAX));
    }

    #[test]
    fn nested_structures_round_trip() {
        let mut obj = Map::new();
        obj.insert("name".into(), JsonValue::from("serve"));
        obj.insert(
            "latencies".into(),
            JsonValue::Array(vec![
                JsonValue::Num(0.5),
                JsonValue::Num(1.25),
                JsonValue::Null,
                JsonValue::Bool(false),
            ]),
        );
        obj.insert("nested".into(), JsonValue::Object(Map::new()));
        let v = JsonValue::Object(obj);
        assert_eq!(roundtrip(&v), v);
        // pretty form parses back to the same value too
        assert_eq!(parse(&v.to_json_pretty()).unwrap(), v);
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        assert_eq!(JsonValue::Num(f64::INFINITY).to_json(), "null");
        assert_eq!(JsonValue::Num(f64::NAN).to_json(), "null");
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse(r#""Aé""#).unwrap(), JsonValue::from("Aé"));
        // surrogate pair: U+1F600
        assert_eq!(parse(r#""😀""#).unwrap(), JsonValue::from("😀"));
        assert!(parse(r#""\ud83d""#).is_err(), "lone surrogate rejected");
    }

    #[test]
    fn malformed_inputs_are_rejected_with_offsets() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1.2.3", "\"unterminated", "{} trailing"] {
            let err = parse(bad).unwrap_err();
            assert!(!err.to_string().is_empty(), "{bad:?}");
        }
        assert!(parse("nul").unwrap_err().to_string().contains("null"));
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).unwrap_err().to_string().contains("deep"));
    }

    #[test]
    fn index_operators_mirror_lookup() {
        let v = parse(r#"{"a":[1,2],"b":{"c":true}}"#).unwrap();
        assert_eq!(v["a"][1], JsonValue::Int(2));
        assert_eq!(v["b"]["c"], JsonValue::Bool(true));
        assert!(v["missing"].is_null());
        assert!(v["a"][9].is_null());
    }
}
