//! Canonical metric and event names used across the workspace.
//!
//! Producers (optimizer, ess, executor, core) and consumers (bench, tests,
//! dashboards) must both go through these constants so the series names
//! cannot drift apart. Labelled series are flat names built with
//! [`crate::labeled`], e.g. `rqp_discovery_steps_total{algo="SB"}`.

// ---- optimizer --------------------------------------------------------

/// Counter: total `Optimizer::optimize` invocations.
pub const OPTIMIZER_CALLS: &str = "rqp_optimizer_calls_total";
/// Histogram: wall-clock seconds per `Optimizer::optimize` call.
pub const OPTIMIZER_OPTIMIZE_SECONDS: &str = "rqp_optimizer_optimize_seconds";
/// Counter: DP memo entries materialized (plans enumerated).
pub const OPTIMIZER_DP_ENTRIES: &str = "rqp_optimizer_dp_entries_total";
/// Counter: join candidates considered across all DP splits.
pub const OPTIMIZER_JOIN_CANDIDATES: &str = "rqp_optimizer_join_candidates_total";
/// Counter: spill-constrained optimize calls (`optimize_spilling_on`).
pub const OPTIMIZER_SPILL_CONSTRAINED_CALLS: &str = "rqp_optimizer_spill_constrained_calls_total";

// ---- ess --------------------------------------------------------------

/// Counter: POSP grid-cell fingerprints that hit an already-compiled plan.
pub const ESS_MEMO_HITS: &str = "rqp_ess_memo_hits_total";
/// Counter: POSP grid cells optimized.
pub const ESS_POSP_CELLS: &str = "rqp_ess_posp_cells_total";
/// Histogram: seconds per POSP compile (the §7 "repeated optimizer calls" overhead).
pub const ESS_POSP_COMPILE_SECONDS: &str = "rqp_ess_posp_compile_seconds";
/// Gauge: distinct plans in the most recent POSP.
pub const ESS_POSP_PLANS: &str = "rqp_ess_posp_plans";
/// Histogram: seconds per full `Ess::compile`.
pub const ESS_COMPILE_SECONDS: &str = "rqp_ess_compile_seconds";
/// Histogram: seconds to build the iso-cost contour set.
pub const ESS_CONTOUR_BUILD_SECONDS: &str = "rqp_ess_contour_build_seconds";
/// Gauge: contour bands in the most recent compile.
pub const ESS_CONTOUR_BANDS: &str = "rqp_ess_contour_bands";
/// Gauge: grid cells in the most recent compile.
pub const ESS_GRID_CELLS: &str = "rqp_ess_grid_cells";
/// Counter: total `Ess::compile` invocations.
pub const ESS_COMPILES: &str = "rqp_ess_compiles_total";
/// Counter: seed-sublattice cells optimized with full DP in recost mode.
pub const ESS_SEED_CELLS: &str = "rqp_ess_seed_cells_total";
/// Counter: cells filled by recosting an agreed seed plan (no DP).
pub const ESS_RECOST_CELLS: &str = "rqp_ess_recost_cells_total";
/// Counter: recost-mode cells that fell back to full DP because their seed
/// corners disagreed on the optimal plan.
pub const ESS_RECOST_FALLBACK_CELLS: &str = "rqp_ess_recost_fallback_cells_total";
/// Counter: ESS compiles served from the persistent snapshot cache.
pub const ESS_CACHE_HITS: &str = "rqp_ess_cache_hits_total";
/// Counter: ESS compiles that missed the persistent snapshot cache.
pub const ESS_CACHE_MISSES: &str = "rqp_ess_cache_misses_total";
/// Counter: snapshots written to the persistent snapshot cache.
pub const ESS_CACHE_STORES: &str = "rqp_ess_cache_stores_total";
/// Counter: corrupt persistent-cache entries quarantined to `*.corrupt`.
pub const ESS_CACHE_CORRUPT: &str = "rqp_ess_cache_corrupt_total";
/// Counter: contour bands materialized by the lazy anytime compiler.
pub const ESS_BANDS_COMPILED: &str = "rqp_ess_bands_compiled_total";
/// Counter: contour bands a lazy compile never had to materialize (the
/// discovery terminated below them and the surface was dropped).
pub const ESS_BANDS_SKIPPED: &str = "rqp_ess_bands_skipped_total";

// ---- executor ---------------------------------------------------------

/// Counter: budgeted executions started.
pub const EXEC_BUDGETED: &str = "rqp_exec_budgeted_total";
/// Counter: budgeted executions that completed within budget.
pub const EXEC_BUDGETED_COMPLETED: &str = "rqp_exec_budgeted_completed_total";
/// Counter: budgeted executions cut off at the budget.
pub const EXEC_BUDGET_EXPIRED: &str = "rqp_exec_budget_expired_total";
/// Counter: spill-mode executions (bisection-refined).
pub const EXEC_SPILL: &str = "rqp_exec_spill_total";
/// Counter: spill executions learning an exact selectivity.
pub const EXEC_SPILL_EXACT: &str = "rqp_exec_spill_exact_total";
/// Counter: spill executions learning only a lower bound.
pub const EXEC_SPILL_BOUND: &str = "rqp_exec_spill_bound_total";
/// Labelled counter base: spill observations per error-prone predicate,
/// `rqp_exec_spill_observations_total{epp="<id>"}`.
pub const EXEC_SPILL_OBSERVATIONS: &str = "rqp_exec_spill_observations_total";
/// Counter: executions that died from an injected fault (any seam).
pub const EXEC_FAILED: &str = "rqp_exec_failed_total";

// ---- chaos / supervision ----------------------------------------------

/// Labelled counter base: injected faults per class,
/// `rqp_chaos_faults_injected_total{class="…"}`.
pub const FAULTS_INJECTED: &str = "rqp_chaos_faults_injected_total";
/// Counter: supervised retries of failed executions.
pub const SUPERVISOR_RETRIES: &str = "rqp_supervisor_retries_total";
/// Counter: plans quarantined after exceeding the failure threshold.
pub const SUPERVISOR_QUARANTINES: &str = "rqp_supervisor_quarantines_total";
/// Counter: last-resort clean executions after retries ran dry.
pub const SUPERVISOR_LAST_RESORT: &str = "rqp_supervisor_last_resort_total";
/// Counter: retries skipped because the session deadline lapsed.
pub const SUPERVISOR_DEADLINE_STOPS: &str = "rqp_supervisor_deadline_stops_total";
/// Labelled counter base: discoveries ending in a structured failure,
/// `rqp_discovery_structured_failures_total{algo="…"}`.
pub const DISCOVERY_STRUCTURED_FAILURES: &str = "rqp_discovery_structured_failures_total";

// ---- discovery / evaluation ------------------------------------------

/// Labelled counter base: discovery runs per algorithm (`{algo="…"}`).
pub const DISCOVERY_RUNS: &str = "rqp_discovery_runs_total";
/// Labelled counter base: execution steps taken per algorithm.
pub const DISCOVERY_STEPS: &str = "rqp_discovery_steps_total";
/// Labelled counter base: discoveries whose final step completed.
pub const DISCOVERY_COMPLETED: &str = "rqp_discovery_completed_total";
/// Labelled histogram base: seconds spent per contour band.
pub const DISCOVERY_BAND_SECONDS: &str = "rqp_discovery_band_seconds";
/// Labelled counter base: half-space pruning steps (band promotions on a
/// learned lower bound).
pub const DISCOVERY_HALF_SPACE_PRUNES: &str = "rqp_discovery_half_space_prunes_total";
/// Labelled gauge base: worst-case suboptimality per algorithm.
pub const EVAL_MSO: &str = "rqp_eval_mso";
/// Labelled gauge base: average suboptimality per algorithm.
pub const EVAL_ASO: &str = "rqp_eval_aso";

// ---- serve ------------------------------------------------------------

/// Gauge: sessions currently executing inside the serve worker pool.
pub const SERVE_SESSIONS_ACTIVE: &str = "rqp_serve_sessions_active";
/// Gauge: sessions waiting in the admission queue.
pub const SERVE_QUEUE_DEPTH: &str = "rqp_serve_queue_depth";
/// Counter: sessions admitted into the queue.
pub const SERVE_ADMITTED: &str = "rqp_serve_admitted_total";
/// Counter: sessions refused at admission (queue at capacity).
pub const SERVE_REJECTED: &str = "rqp_serve_rejected_total";
/// Counter: sessions that finished discovery successfully.
pub const SERVE_COMPLETED: &str = "rqp_serve_completed_total";
/// Counter: sessions that ended in failure (compile error, expired
/// deadline, blown budget cap).
pub const SERVE_FAILED: &str = "rqp_serve_failed_total";
/// Counter: sessions still queued when a graceful drain finished them off.
pub const SERVE_DRAINED: &str = "rqp_serve_drained_total";
/// Histogram: wall-clock seconds per served session (admission → result).
pub const SERVE_SESSION_SECONDS: &str = "rqp_serve_session_seconds";
/// Counter: registry lookups served by an already-compiled shared ESS.
pub const SERVE_REGISTRY_HITS: &str = "rqp_serve_registry_hits_total";
/// Counter: registry lookups that had to compile (first session for a
/// fingerprint).
pub const SERVE_REGISTRY_MISSES: &str = "rqp_serve_registry_misses_total";
/// Counter: sessions that blocked on a peer's in-flight compile instead of
/// starting their own (single-flight suppression).
pub const SERVE_SINGLEFLIGHT_WAITS: &str = "rqp_serve_singleflight_waits_total";
/// Counter: telemetry endpoint connections that failed on a socket error
/// (setup, write or flush) — a scrape failing silently looks like a wedged
/// server, so the failure itself is counted.
pub const SERVE_TELEMETRY_ERRORS: &str = "rqp_serve_telemetry_errors_total";
/// Counter: registry entries restored from the persistent disk cache
/// instead of recompiling (warm-restart recovery path).
pub const SERVE_REGISTRY_DISK_HITS: &str = "rqp_serve_registry_disk_hits_total";
/// Counter: circuit breakers opened (a compile failure started or
/// extended a backoff window).
pub const SERVE_BREAKER_OPEN: &str = "rqp_serve_breaker_open_total";
/// Counter: half-open re-probes admitted after a backoff window elapsed.
pub const SERVE_BREAKER_REPROBE: &str = "rqp_serve_breaker_reprobe_total";
/// Counter: breakers closed again by a successful re-probe.
pub const SERVE_BREAKER_CLOSE: &str = "rqp_serve_breaker_close_total";
/// Counter: lookups refused instantly because a breaker was open.
pub const SERVE_BREAKER_REFUSED: &str = "rqp_serve_breaker_refused_total";
/// Counter: registry waits that returned `DeadlineExpired` instead of
/// blocking past the session deadline on a wedged peer compile.
pub const SERVE_WAIT_DEADLINE_EXPIRED: &str = "rqp_serve_wait_deadline_expired_total";
/// Counter: sessions served a native-optimizer fallback plan because the
/// breaker was open and degradation was enabled.
pub const SERVE_DEGRADED: &str = "rqp_serve_degraded_total";
/// Counter: sessions refused because the spec itself was invalid (e.g.
/// an out-of-range `qa`) — distinct from backpressure rejections.
pub const SERVE_INVALID_SPEC: &str = "rqp_serve_invalid_spec_total";
/// Counter: sessions accepted over the TCP wire transport.
pub const SERVE_WIRE_SESSIONS: &str = "rqp_serve_wire_sessions_total";
/// Counter: wire-level rejection frames sent (queue saturation mapped
/// onto the `Overloaded` admission path).
pub const SERVE_WIRE_REJECTED: &str = "rqp_serve_wire_rejections_total";
/// Counter: connections dropped on a malformed or hostile frame (bad
/// length prefix, oversized frame, undecodable payload).
pub const SERVE_WIRE_FRAME_ERRORS: &str = "rqp_serve_wire_frame_errors_total";
/// Labelled counter base: compile-seam faults injected per class,
/// `rqp_chaos_compile_faults_injected_total{class="…"}`.
pub const COMPILE_FAULTS_INJECTED: &str = "rqp_chaos_compile_faults_injected_total";

// ---- span names -------------------------------------------------------
//
// Causal-trace span names (see [`crate::trace`]). rqp-lint's `obs-names`
// rule forbids inline string literals at `Tracer::span` / `record_span`
// call sites, so every span name used in the workspace lives here.

/// Span: a whole served session (admission → result).
pub const SPAN_SESSION: &str = "session";
/// Span: an `Ess::compile_cached` performed by this session.
pub const SPAN_ESS_COMPILE: &str = "ess_compile";
/// Span: blocked on a peer session's in-flight compile (single-flight).
pub const SPAN_REGISTRY_WAIT: &str = "registry_wait";
/// Span: building the iso-cost contour set inside a compile.
pub const SPAN_CONTOUR_BUILD: &str = "contour_build";
/// Span: aggregate seed-sublattice full-DP phase of a recost compile.
pub const SPAN_POSP_SEED_DP: &str = "posp_seed_dp";
/// Span: aggregate corner-agreement recosting phase of a recost compile.
pub const SPAN_POSP_RECOST: &str = "posp_recost";
/// Span: aggregate fallback full-DP phase (seed corners disagreed).
pub const SPAN_POSP_FALLBACK_DP: &str = "posp_fallback_dp";
/// Span: aggregate exhaustive per-cell DP phase of an exact compile.
pub const SPAN_POSP_EXACT_DP: &str = "posp_exact_dp";
/// Span: one contour band materialized by the lazy anytime compiler.
pub const SPAN_ESS_BAND_COMPILE: &str = "ess_band_compile";
/// Span: one iso-cost contour band of the discovery climb.
pub const SPAN_CONTOUR_BAND: &str = "contour_band";
/// Span: one discovery step (plan choice / spill probe / re-opt round).
pub const SPAN_DISCOVERY_STEP: &str = "discovery_step";
/// Span: one budgeted engine execution attempt (supervised).
pub const SPAN_EXECUTION: &str = "execution";

// ---- event kinds ------------------------------------------------------

/// Event: one budgeted execution (one per `Engine::execute_budgeted`).
pub const EV_BUDGETED_EXECUTION: &str = "budgeted_execution";
/// Event: one spill-mode execution.
pub const EV_SPILL_EXECUTION: &str = "spill_execution";
/// Event: an `Ess::compile` finished.
pub const EV_ESS_COMPILE: &str = "ess_compile";
/// Event: one contour band summarized during compile.
pub const EV_CONTOUR_BAND: &str = "contour_band";
/// Event: a persistent compile-cache lookup resolved (hit or miss).
pub const EV_ESS_CACHE: &str = "ess_cache";
/// Event: a selectivity was learned during discovery.
pub const EV_LEARNED_SELECTIVITY: &str = "learned_selectivity";
/// Event: a half-space pruning band promotion.
pub const EV_HALF_SPACE_PRUNING: &str = "half_space_pruning";
/// Event: a discovery run finished.
pub const EV_DISCOVERY_COMPLETE: &str = "discovery_complete";
/// Event: an algorithm's MSO/ASO evaluation was summarized.
pub const EV_EVALUATION: &str = "evaluation";
/// Event: a fault was injected into an execution.
pub const EV_FAULT_INJECTED: &str = "fault_injected";
/// Event: the supervisor retried a failed execution.
pub const EV_EXECUTION_RETRY: &str = "execution_retry";
/// Event: a plan was quarantined for the rest of the run.
pub const EV_PLAN_QUARANTINED: &str = "plan_quarantined";
/// Event: a discovery run ended in a structured failure.
pub const EV_DISCOVERY_FAILED: &str = "discovery_failed";
/// Event: a session was admitted into the serve queue.
pub const EV_SESSION_ADMITTED: &str = "session_admitted";
/// Event: a session was refused at admission (backpressure).
pub const EV_SESSION_REJECTED: &str = "session_rejected";
/// Event: a served session finished (any outcome).
pub const EV_SESSION_COMPLETE: &str = "session_complete";
/// Event: the serve scheduler drained and shut down.
pub const EV_SERVE_DRAIN: &str = "serve_drain";
/// Event: a per-fingerprint circuit breaker changed state.
pub const EV_BREAKER_TRANSITION: &str = "breaker_transition";
/// Event: a compile-seam fault was injected (panic, failure, slow IO,
/// cache corruption).
pub const EV_COMPILE_FAULT_INJECTED: &str = "compile_fault_injected";
/// Event: a corrupt cache entry was quarantined to `*.corrupt`.
pub const EV_CACHE_QUARANTINE: &str = "cache_quarantine";
/// Event: a session was served the degraded native-optimizer fallback.
pub const EV_SESSION_DEGRADED: &str = "session_degraded";
