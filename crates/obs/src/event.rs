//! The structured event stream: a process-global, pluggable sink behind a
//! single atomic switch.
//!
//! The default state is "no sink installed": [`events_enabled`] is one
//! relaxed atomic load returning `false`, so instrumented hot paths
//! (`Engine::execute_budgeted`, the discovery loops) pay essentially
//! nothing unless the user asked for `--events`.

use crate::json::{self, JsonError, JsonValue, Map};
use parking_lot::{Mutex, RwLock};
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// One structured event. Encodes as a flat JSON object with the kind
/// first: `{"event":"budgeted_execution","budget":12.5,…}`.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The event kind, e.g. `"budgeted_execution"`.
    pub name: String,
    /// Free-form payload fields, flattened into the object.
    pub fields: Map,
}

impl Event {
    /// A new event with no payload yet.
    pub fn new(name: &str) -> Self {
        Event { name: name.to_string(), fields: Map::new() }
    }

    /// Attach a payload field (builder style).
    pub fn with(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        self.fields.insert(key.to_string(), value.into());
        self
    }

    /// Encode as one compact JSON object, the `"event"` key first. Uses the
    /// self-contained codec in [`crate::json`], so the output is real JSON
    /// even when the workspace is built against the offline serde stubs.
    pub fn to_json(&self) -> String {
        // "event" must lead the line for greppability, so the object is
        // assembled by hand rather than through a (sorted) Map.
        let mut out = String::from("{\"event\":");
        out.push_str(&JsonValue::from(self.name.as_str()).to_json());
        for (k, v) in &self.fields {
            out.push(',');
            out.push_str(&JsonValue::from(k.as_str()).to_json());
            out.push(':');
            out.push_str(&v.to_json());
        }
        out.push('}');
        out
    }

    /// Decode one JSONL line produced by [`Event::to_json`].
    ///
    /// # Errors
    /// Fails on malformed JSON, a non-object, or a missing/non-string
    /// `"event"` key.
    pub fn from_json(line: &str) -> Result<Event, JsonError> {
        let parsed = json::parse(line)?;
        let JsonValue::Object(mut fields) = parsed else {
            return Err(JsonError::new("event line is not a JSON object"));
        };
        let name = match fields.remove("event") {
            Some(JsonValue::Str(s)) => s,
            _ => return Err(JsonError::new("event line has no string \"event\" key")),
        };
        Ok(Event { name, fields })
    }
}

/// Where emitted events go.
pub trait EventSink: Send + Sync {
    /// Record one event.
    fn record(&self, event: &Event);
    /// Flush any buffered output. Default: no-op.
    fn flush(&self) {}
}

/// A sink writing one JSON object per line to any `Write` target.
///
/// Write errors never propagate to the instrumented hot path (an event
/// stream must not take the engine down), but they are not silent either:
/// every failed write/flush is counted, and [`io_errors`](Self::io_errors)
/// exposes the tally so a harness can fail loudly on a broken sink.
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
    errors: AtomicU64,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JsonlSink")
    }
}

impl JsonlSink {
    /// Wrap a writer (file, stderr, `Vec<u8>`…).
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonlSink { out: Mutex::new(out), errors: AtomicU64::new(0) }
    }

    /// Open (create/truncate) a JSONL file at `path`.
    pub fn create(path: &str) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(JsonlSink::new(Box::new(std::io::BufWriter::new(f))))
    }

    /// Number of write/flush errors swallowed so far (events are
    /// best-effort; the count makes a broken sink observable).
    pub fn io_errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }
}

impl EventSink for JsonlSink {
    fn record(&self, event: &Event) {
        let line = event.to_json();
        let mut out = self.out.lock();
        // This mutex exists solely to serialize writes to the sink: holding
        // it across the write IS the serialization, and only other emitters
        // can contend on it.
        // rqp-lint: allow(guard-across-blocking): write-serialization mutex
        let res = out.write_all(line.as_bytes()).and_then(|()| out.write_all(b"\n"));
        if res.is_err() {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn flush(&self) {
        // rqp-lint: allow(guard-across-blocking): write-serialization mutex
        if self.out.lock().flush().is_err() {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A sink buffering events in memory; useful in tests.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Copy out everything recorded so far.
    pub fn drain(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl EventSink for MemorySink {
    fn record(&self, event: &Event) {
        self.events.lock().push(event.clone());
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<dyn EventSink>>> = RwLock::new(None);

/// True when a sink is installed. Instrumented code should check this
/// before building an [`Event`] so the disabled path stays free.
#[inline]
pub fn events_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Install the process-global event sink (replacing any previous one).
pub fn set_sink(sink: Arc<dyn EventSink>) {
    *SINK.write() = Some(sink);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Remove the sink; [`events_enabled`] turns false again.
pub fn clear_sink() {
    ENABLED.store(false, Ordering::Relaxed);
    *SINK.write() = None;
}

/// Send an event to the installed sink, if any.
pub fn emit(event: Event) {
    if !events_enabled() {
        return;
    }
    let guard = SINK.read();
    if let Some(sink) = guard.as_ref() {
        sink.record(&event);
    }
}

/// Flush the installed sink, if any.
pub fn flush_sink() {
    let guard = SINK.read();
    if let Some(sink) = guard.as_ref() {
        // rqp-lint: allow(swallowed-result): EventSink::flush returns ()
        sink.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_event_round_trip_through_json_codec() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));

        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let sink = JsonlSink::new(Box::new(Shared(Arc::clone(&buf))));
        let ev = Event::new("budgeted_execution")
            .with("budget", 12.5)
            .with("completed", true)
            .with("algo", "SB");
        sink.record(&ev);
        sink.record(&Event::new("spill_execution").with("epp", 2));

        let text = String::from_utf8(buf.lock().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"event\":\"budgeted_execution\""));
        let back = Event::from_json(lines[0]).unwrap();
        assert_eq!(back, ev);
        assert_eq!(back.name, "budgeted_execution");
        assert_eq!(back.fields["budget"], JsonValue::from(12.5));
        let v = json::parse(lines[1]).unwrap();
        assert_eq!(v["event"], JsonValue::from("spill_execution"));
        assert_eq!(v["epp"], JsonValue::from(2));
    }

    #[test]
    fn from_json_rejects_malformed_lines() {
        assert!(Event::from_json("not json").is_err());
        assert!(Event::from_json("[1,2]").is_err());
        assert!(Event::from_json("{\"no_event_key\":1}").is_err());
        assert!(Event::from_json("{\"event\":42}").is_err());
    }

    // Global sink state is process-wide, so all assertions about it live
    // in this single test to avoid interference from parallel test threads.
    #[test]
    fn global_sink_lifecycle() {
        assert!(!events_enabled(), "no sink installed at start");
        emit(Event::new("dropped")); // no-op, must not panic

        let mem = Arc::new(MemorySink::new());
        set_sink(Arc::clone(&mem) as Arc<dyn EventSink>);
        assert!(events_enabled());
        emit(Event::new("kept").with("n", 1));
        flush_sink();
        assert_eq!(mem.len(), 1);
        assert_eq!(mem.drain()[0].name, "kept");

        clear_sink();
        assert!(!events_enabled());
        emit(Event::new("dropped_again"));
        assert_eq!(mem.len(), 1, "cleared sink receives nothing");
    }
}
