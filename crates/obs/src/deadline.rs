//! Wall-clock deadlines, threaded from admission to execution.
//!
//! A [`Deadline`] is a copyable token carrying an optional absolute
//! expiry instant. It lives here — not in the deterministic crates —
//! because wall-clock access is routed through `rqp_obs` (lint rule
//! `determinism`): discovery code only ever *asks* a deadline whether it
//! has lapsed, it never reads a clock itself. An unbounded deadline
//! ([`Deadline::none`]) never expires and costs one branch per check, so
//! deadline-free callers keep byte-identical behavior.

use std::time::{Duration, Instant};

/// An optional absolute wall-clock expiry, checked cooperatively.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// The unbounded deadline: never expires.
    pub fn none() -> Deadline {
        Deadline { at: None }
    }

    /// A deadline `budget` from now.
    pub fn within(budget: Duration) -> Deadline {
        Deadline { at: Instant::now().checked_add(budget) }
    }

    /// A deadline at the absolute instant `at`.
    pub fn at(at: Instant) -> Deadline {
        Deadline { at: Some(at) }
    }

    /// Whether this deadline can ever expire.
    pub fn is_bounded(&self) -> bool {
        self.at.is_some()
    }

    /// Whether the deadline has lapsed. Unbounded deadlines never lapse.
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }

    /// Time left before expiry: `None` for an unbounded deadline,
    /// `Some(ZERO)` once lapsed. Suitable for `Condvar::wait_timeout`.
    pub fn remaining(&self) -> Option<Duration> {
        self.at.map(|at| at.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_expires() {
        let d = Deadline::none();
        assert!(!d.is_bounded());
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let d = Deadline::within(Duration::ZERO);
        assert!(d.is_bounded());
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn future_deadline_reports_remaining_time() {
        let d = Deadline::within(Duration::from_secs(3600));
        assert!(!d.expired());
        let left = d.remaining().unwrap_or(Duration::ZERO);
        assert!(left > Duration::from_secs(3500));
    }

    #[test]
    fn default_is_unbounded() {
        assert_eq!(Deadline::default(), Deadline::none());
    }
}
