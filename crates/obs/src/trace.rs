//! Hierarchical causal tracing with deterministic identifiers.
//!
//! The metrics layer answers "how much, in aggregate"; this module answers
//! *where a particular session's budget went*: admission → shared-registry
//! compile (or wait-on-peer) → per-contour climb → per-attempt execution.
//! Each unit of work is a [`SpanRecord`] with a `trace_id`/`span_id`/
//! `parent_id` triple. Identifiers are **deterministic**: the caller seeds
//! the trace id (session fingerprint), and span ids come from a per-trace
//! counter — so under a quiet (fault-free, fixed-seed) schedule the
//! structural shape of a trace is byte-identical across runs (see
//! [`structural_render`]).
//!
//! A [`Tracer`] is a cheap-clone handle; [`Tracer::disabled`] is a no-op
//! whose spans cost two branch tests, so instrumented code pays nothing
//! when tracing is off. The current tracer is carried in a thread-local
//! ([`install`]/[`current`]) so deep call chains (registry → ess →
//! supervisor → engine) need no signature changes: each serve worker
//! installs its session's tracer for the duration of the session; threads
//! that never install one (e.g. rayon compile workers) see the disabled
//! tracer.
//!
//! [`SpanGuard`] subsumes the histogram-feeding [`crate::Timer`]: attach a
//! histogram with [`SpanGuard::with_histogram`] and the guard observes its
//! elapsed seconds on drop in addition to recording the span.

use crate::json::JsonValue;
use crate::metrics::Histogram;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// What a span *is*, causally. The kinds map onto the paper's budget
/// accounting: a `Session` owns everything; `Compile`/`Wait` are the
/// shared-ESS cost (amortized, §7); `Contour` is one iso-cost band of the
/// doubling climb; `Step` is one discovery decision; `Execution` is one
/// budgeted engine run whose `spent` attribute feeds
/// `check_trace_accounting`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A whole serve session (or CLI discovery run).
    Session,
    /// An ESS/POSP compile performed by this trace.
    Compile,
    /// One phase inside a compile (seed DP, recosting, fallback DP…).
    CompilePhase,
    /// Blocked on a peer session's in-flight compile (single-flight wait).
    Wait,
    /// One iso-cost contour band of the discovery climb.
    Contour,
    /// One discovery decision step (plan choice, re-optimization round…).
    Step,
    /// One budgeted engine execution attempt.
    Execution,
}

impl SpanKind {
    /// Stable lowercase label, used as the Chrome trace-event category.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Session => "session",
            SpanKind::Compile => "compile",
            SpanKind::CompilePhase => "compile_phase",
            SpanKind::Wait => "wait",
            SpanKind::Contour => "contour",
            SpanKind::Step => "step",
            SpanKind::Execution => "execution",
        }
    }
}

/// One completed span. `start`/`duration` are seconds relative to the
/// trace epoch (the `Tracer`'s creation instant), so records from one
/// trace are mutually comparable without any wall-clock anchor.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Deterministic trace identifier (seeded by the caller).
    pub trace_id: u64,
    /// Span identifier, unique within the trace (counter, starts at 1).
    pub span_id: u64,
    /// Enclosing span, or `None` for a root span.
    pub parent_id: Option<u64>,
    /// Span name — a constant from [`crate::names`] (enforced by rqp-lint).
    pub name: &'static str,
    /// Causal kind of this span.
    pub kind: SpanKind,
    /// Seconds since the trace epoch at which the span opened.
    pub start: f64,
    /// Span length in seconds.
    pub duration: f64,
    /// Typed attributes (band index, budget, spent, …).
    pub attrs: Vec<(&'static str, JsonValue)>,
    /// Display lane (one per worker/session in the Chrome export).
    pub lane: u64,
}

impl SpanRecord {
    /// Look up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&JsonValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// An attribute coerced to `f64` (Int/UInt/Num), if present.
    pub fn attr_f64(&self, key: &str) -> Option<f64> {
        match self.attr(key)? {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::UInt(u) => Some(*u as f64),
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct TracerInner {
    trace_id: u64,
    lane: u64,
    next_span: AtomicU64,
    epoch: Instant,
    state: Mutex<TraceState>,
}

#[derive(Default)]
struct TraceState {
    spans: Vec<SpanRecord>,
    /// Open-span stack; the top is the parent for new spans. Sessions are
    /// single-threaded so plain LIFO discipline holds.
    stack: Vec<u64>,
}

/// A cheap-clone handle to one trace. Cloning shares the underlying
/// buffer; the disabled tracer makes every operation a no-op.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(i) => write!(f, "Tracer(trace_id={:#x}, lane={})", i.trace_id, i.lane),
            None => write!(f, "Tracer(disabled)"),
        }
    }
}

impl Tracer {
    /// A no-op tracer: spans are never recorded.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// A live tracer. `trace_id` should be derived deterministically from
    /// the session (e.g. compile fingerprint ⊕ session id); `lane` selects
    /// the display row in the Chrome export (e.g. the session id).
    pub fn new(trace_id: u64, lane: u64) -> Self {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                trace_id,
                lane,
                next_span: AtomicU64::new(1),
                epoch: Instant::now(),
                state: Mutex::new(TraceState::default()),
            })),
        }
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The deterministic trace id, or 0 when disabled.
    pub fn trace_id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.trace_id)
    }

    /// Open a span. The guard records a [`SpanRecord`] when dropped; the
    /// span's parent is whatever span is currently open on this trace.
    /// `name` must be a constant from [`crate::names`].
    pub fn span(&self, name: &'static str, kind: SpanKind) -> SpanGuard {
        match &self.inner {
            None => SpanGuard {
                inner: None,
                span_id: 0,
                parent_id: None,
                name,
                kind,
                start: 0.0,
                wall: None,
                attrs: Vec::new(),
                hist: None,
            },
            Some(inner) => {
                let span_id = inner.next_span.fetch_add(1, Ordering::Relaxed);
                let parent_id = {
                    let mut st = inner.state.lock();
                    let parent = st.stack.last().copied();
                    st.stack.push(span_id);
                    parent
                };
                SpanGuard {
                    inner: Some(Arc::clone(inner)),
                    span_id,
                    parent_id,
                    name,
                    kind,
                    start: inner.epoch.elapsed().as_secs_f64(),
                    wall: Some(Instant::now()),
                    attrs: Vec::new(),
                    hist: None,
                }
            }
        }
    }

    /// Record a synthetic (already-measured) span of `seconds` under the
    /// currently open span. Used for aggregate phases measured with
    /// [`crate::Stopwatch`] across parallel workers, where live guards
    /// per unit would be too fine-grained. `name` must be a constant from
    /// [`crate::names`].
    pub fn record_span(
        &self,
        name: &'static str,
        kind: SpanKind,
        seconds: f64,
        attrs: Vec<(&'static str, JsonValue)>,
    ) {
        let Some(inner) = &self.inner else { return };
        let span_id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        let end = inner.epoch.elapsed().as_secs_f64();
        let mut st = inner.state.lock();
        let parent_id = st.stack.last().copied();
        st.spans.push(SpanRecord {
            trace_id: inner.trace_id,
            span_id,
            parent_id,
            name,
            kind,
            start: (end - seconds).max(0.0),
            duration: seconds.max(0.0),
            attrs,
            lane: inner.lane,
        });
    }

    /// Snapshot the completed spans so far, ordered by start time (ties
    /// broken by span id, so the order is deterministic).
    pub fn spans(&self) -> Vec<SpanRecord> {
        let Some(inner) = &self.inner else { return Vec::new() };
        let mut spans = inner.state.lock().spans.clone();
        spans.sort_by(|a, b| {
            a.start
                .partial_cmp(&b.start)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.span_id.cmp(&b.span_id))
        });
        spans
    }
}

/// RAII span guard. Records its [`SpanRecord`] on drop; optionally also
/// observes its elapsed seconds into a histogram ([`Self::with_histogram`]),
/// subsuming [`crate::Timer`] at sites that want both.
pub struct SpanGuard {
    inner: Option<Arc<TracerInner>>,
    span_id: u64,
    parent_id: Option<u64>,
    name: &'static str,
    kind: SpanKind,
    start: f64,
    wall: Option<Instant>,
    attrs: Vec<(&'static str, JsonValue)>,
    hist: Option<Arc<Histogram>>,
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SpanGuard({} #{})", self.name, self.span_id)
    }
}

impl SpanGuard {
    /// Attach a typed attribute to the span.
    pub fn attr(&mut self, key: &'static str, value: impl Into<JsonValue>) {
        if self.inner.is_some() {
            self.attrs.push((key, value.into()));
        }
    }

    /// Also observe the guard's elapsed seconds into `hist` on drop
    /// (works even on a disabled tracer, replacing a bare [`crate::Timer`]).
    pub fn with_histogram(mut self, hist: &Arc<Histogram>) -> Self {
        if self.wall.is_none() {
            self.wall = Some(Instant::now());
        }
        self.hist = Some(Arc::clone(hist));
        self
    }

    /// The span id (0 on a disabled tracer).
    pub fn span_id(&self) -> u64 {
        self.span_id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.wall.map_or(0.0, |w| w.elapsed().as_secs_f64());
        if let Some(h) = self.hist.take() {
            h.observe(elapsed);
        }
        let Some(inner) = self.inner.take() else { return };
        let mut st = inner.state.lock();
        // LIFO discipline: this guard should be the top of the stack. Be
        // robust to out-of-order drops (e.g. guards held across scopes) by
        // removing wherever the id sits.
        if let Some(pos) = st.stack.iter().rposition(|&id| id == self.span_id) {
            st.stack.remove(pos);
        }
        st.spans.push(SpanRecord {
            trace_id: inner.trace_id,
            span_id: self.span_id,
            parent_id: self.parent_id,
            name: self.name,
            kind: self.kind,
            start: self.start,
            duration: elapsed,
            attrs: std::mem::take(&mut self.attrs),
            lane: inner.lane,
        });
    }
}

thread_local! {
    static CURRENT: RefCell<Tracer> = RefCell::new(Tracer::disabled());
}

/// The tracer installed on this thread, or the disabled tracer.
pub fn current() -> Tracer {
    CURRENT.with(|c| c.borrow().clone())
}

/// Install `tracer` as this thread's current tracer for the lifetime of
/// the returned scope; the previous tracer is restored on drop.
#[must_use = "the tracer is uninstalled when the scope drops"]
pub fn install(tracer: Tracer) -> TraceScope {
    let prev = CURRENT.with(|c| c.replace(tracer));
    TraceScope { prev: Some(prev) }
}

/// RAII scope for [`install`]; restores the previously installed tracer.
#[derive(Debug)]
pub struct TraceScope {
    prev: Option<Tracer>,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            CURRENT.with(|c| {
                *c.borrow_mut() = prev;
            });
        }
    }
}

/// Render the purely structural shape of a trace — nesting, names, kinds
/// and ids, **no timings** — so quiet-schedule traces can be compared
/// byte-for-byte in tests.
pub fn structural_render(spans: &[SpanRecord]) -> String {
    fn walk(spans: &[SpanRecord], parent: Option<u64>, depth: usize, out: &mut String) {
        let mut children: Vec<&SpanRecord> =
            spans.iter().filter(|s| s.parent_id == parent).collect();
        children.sort_by_key(|s| s.span_id);
        for s in children {
            for _ in 0..depth {
                out.push_str("  ");
            }
            out.push_str(&format!("{} [{}] #{}\n", s.name, s.kind.as_str(), s.span_id));
            walk(spans, Some(s.span_id), depth + 1, out);
        }
    }
    let mut out = String::new();
    walk(spans, None, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        {
            let mut g = t.span("x", SpanKind::Step);
            g.attr("k", 1i64);
        }
        t.record_span("y", SpanKind::CompilePhase, 0.5, Vec::new());
        assert!(t.spans().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn nesting_and_deterministic_ids() {
        let t = Tracer::new(0xDEAD, 7);
        {
            let _root = t.span("root", SpanKind::Session);
            {
                let mut child = t.span("child", SpanKind::Step);
                child.attr("band", 3i64);
            }
            {
                let _second = t.span("second", SpanKind::Execution);
            }
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 3);
        let root = spans.iter().find(|s| s.name == "root").expect("root span");
        assert_eq!(root.span_id, 1);
        assert_eq!(root.parent_id, None);
        assert_eq!(root.trace_id, 0xDEAD);
        assert_eq!(root.lane, 7);
        let child = spans.iter().find(|s| s.name == "child").expect("child span");
        assert_eq!(child.parent_id, Some(1));
        assert_eq!(child.attr_f64("band"), Some(3.0));
        let second = spans.iter().find(|s| s.name == "second").expect("second span");
        assert_eq!(second.parent_id, Some(1));
        assert_ne!(child.span_id, second.span_id);
    }

    #[test]
    fn structural_render_is_timing_free_and_stable() {
        let render = |_| {
            let t = Tracer::new(42, 0);
            {
                let _root = t.span("session", SpanKind::Session);
                {
                    let _c = t.span("compile", SpanKind::Compile);
                    t.record_span("phase", SpanKind::CompilePhase, 0.001, Vec::new());
                }
                let _e = t.span("exec", SpanKind::Execution);
            }
            structural_render(&t.spans())
        };
        let a = render(0);
        let b = render(1);
        assert_eq!(a, b, "quiet-schedule structural traces must be byte-identical");
        assert!(a.contains("session [session] #1"));
        assert!(a.contains("  compile [compile] #2"));
        assert!(a.contains("    phase [compile_phase] #3"));
    }

    #[test]
    fn install_scopes_nest_and_restore() {
        assert!(!current().is_enabled());
        let outer = Tracer::new(1, 0);
        {
            let _s1 = install(outer.clone());
            assert_eq!(current().trace_id(), 1);
            {
                let _s2 = install(Tracer::new(2, 0));
                assert_eq!(current().trace_id(), 2);
            }
            assert_eq!(current().trace_id(), 1);
        }
        assert!(!current().is_enabled());
    }

    #[test]
    fn span_guard_feeds_histogram_like_timer() {
        let reg = crate::metrics::MetricsRegistry::new();
        let h = reg.histogram("span_guard_seconds", &crate::span::default_latency_buckets());
        let t = Tracer::new(9, 0);
        {
            let _g = t.span("timed", SpanKind::Contour).with_histogram(&h);
        }
        assert_eq!(h.count(), 1);
        assert_eq!(t.spans().len(), 1);
        // And on a disabled tracer the histogram still fires.
        {
            let _g = Tracer::disabled().span("timed", SpanKind::Contour).with_histogram(&h);
        }
        assert_eq!(h.count(), 2);
    }
}
