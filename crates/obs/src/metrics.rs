//! The thread-safe metrics registry: counters, gauges and fixed-bucket
//! histograms, with JSON and Prometheus-text exports.

use crate::json::{self, JsonError, JsonValue};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding an arbitrary `f64` (stored as raw bits).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }

    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` exceeds the current value.
    pub fn set_max(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

fn atomic_f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// A fixed-bucket histogram. `bounds` are the inclusive upper edges of the
/// finite buckets, in strictly ascending order; one extra overflow bucket
/// catches everything beyond the last bound.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// A histogram with the given finite upper bounds (ascending).
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: bounds.to_vec(),
            counts,
            sum: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Record one observation. A value `v` lands in the first bucket whose
    /// upper bound is `>= v` (the overflow bucket if none is).
    pub fn observe(&self, v: f64) {
        let idx = self.bounds.partition_point(|&b| v > b);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum, v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum.load(Ordering::Relaxed))
    }

    /// The finite bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds().len() + 1` entries; the last is the
    /// overflow bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }
}

/// Exponential bucket bounds: `start, start·factor, …` (`count` bounds).
///
/// # Panics
/// Panics unless `start > 0`, `factor > 1` and `count >= 1`.
pub fn exponential_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0 && factor > 1.0 && count >= 1, "invalid bucket schedule");
    let mut v = Vec::with_capacity(count);
    let mut b = start;
    for _ in 0..count {
        v.push(b);
        b *= factor;
    }
    v
}

/// Escape a label value per the Prometheus text exposition format:
/// backslash, double quote and newline must be written `\\`, `\"`, `\n`.
/// Escaping happens here, at series-name construction time — a raw `"` in
/// the stored flat name would make `base{k="v"}` unparseable later.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Format a metric name with labels, `base{k="v",…}` — the flat naming
/// convention the registry uses for labelled series. Label *values* are
/// escaped per the Prometheus text exposition format
/// ([`escape_label_value`]); keys are assumed to be identifiers.
pub fn labeled(base: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return base.to_string();
    }
    let body: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v))).collect();
    format!("{base}{{{}}}", body.join(","))
}

/// A point-in-time copy of a histogram, serializable and diffable.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Finite bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (`bounds.len() + 1`; last is overflow).
    pub counts: Vec<u64>,
}

/// A point-in-time copy of the whole registry. Encodes to the JSON that
/// `reproduce --metrics` writes, and decodes back for diffing runs. The
/// codec is the self-contained [`crate::json`] module, so round-trips work
/// regardless of which `serde_json` the workspace was built against.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Gauges may legitimately hold ±∞ (e.g. the `subopt()` failure sentinel)
/// or NaN, which JSON numbers cannot carry; encode those as string
/// sentinels so decode restores the exact value.
fn gauge_to_value(v: f64) -> JsonValue {
    if v.is_finite() {
        JsonValue::Num(v)
    } else if v.is_nan() {
        JsonValue::Str("NaN".to_string())
    } else if v > 0.0 {
        JsonValue::Str("Infinity".to_string())
    } else {
        JsonValue::Str("-Infinity".to_string())
    }
}

fn value_to_gauge(v: &JsonValue) -> Result<f64, JsonError> {
    match v {
        JsonValue::Str(s) if s == "NaN" => Ok(f64::NAN),
        JsonValue::Str(s) if s == "Infinity" => Ok(f64::INFINITY),
        JsonValue::Str(s) if s == "-Infinity" => Ok(f64::NEG_INFINITY),
        other => other.as_f64().ok_or_else(|| JsonError::new("gauge value is not a number")),
    }
}

fn num_array(vals: &[f64]) -> JsonValue {
    JsonValue::Array(vals.iter().map(|&v| JsonValue::Num(v)).collect())
}

fn uint_array(vals: &[u64]) -> JsonValue {
    JsonValue::Array(vals.iter().map(|&v| JsonValue::from(v)).collect())
}

fn decode_f64_array(v: &JsonValue, what: &str) -> Result<Vec<f64>, JsonError> {
    v.as_array()
        .ok_or_else(|| JsonError::new(format!("{what} is not an array")))?
        .iter()
        .map(|x| x.as_f64().ok_or_else(|| JsonError::new(format!("{what} entry is not a number"))))
        .collect()
}

fn decode_u64_array(v: &JsonValue, what: &str) -> Result<Vec<u64>, JsonError> {
    v.as_array()
        .ok_or_else(|| JsonError::new(format!("{what} is not an array")))?
        .iter()
        .map(|x| x.as_u64().ok_or_else(|| JsonError::new(format!("{what} entry is not a u64"))))
        .collect()
}

impl HistogramSnapshot {
    fn to_value(&self) -> JsonValue {
        let mut m = json::Map::new();
        m.insert("count".to_string(), JsonValue::from(self.count));
        m.insert("sum".to_string(), JsonValue::Num(self.sum));
        m.insert("bounds".to_string(), num_array(&self.bounds));
        m.insert("counts".to_string(), uint_array(&self.counts));
        JsonValue::Object(m)
    }

    fn from_value(v: &JsonValue) -> Result<HistogramSnapshot, JsonError> {
        Ok(HistogramSnapshot {
            count: v["count"].as_u64().ok_or_else(|| JsonError::new("histogram count missing"))?,
            sum: v["sum"].as_f64().ok_or_else(|| JsonError::new("histogram sum missing"))?,
            bounds: decode_f64_array(&v["bounds"], "histogram bounds")?,
            counts: decode_u64_array(&v["counts"], "histogram counts")?,
        })
    }
}

impl MetricsSnapshot {
    fn to_value(&self) -> JsonValue {
        let counters =
            self.counters.iter().map(|(k, &v)| (k.clone(), JsonValue::from(v))).collect();
        let gauges = self.gauges.iter().map(|(k, &v)| (k.clone(), gauge_to_value(v))).collect();
        let histograms = self.histograms.iter().map(|(k, h)| (k.clone(), h.to_value())).collect();
        let mut m = json::Map::new();
        m.insert("counters".to_string(), JsonValue::Object(counters));
        m.insert("gauges".to_string(), JsonValue::Object(gauges));
        m.insert("histograms".to_string(), JsonValue::Object(histograms));
        JsonValue::Object(m)
    }

    /// Encode as compact JSON.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Encode as pretty-printed JSON, then verify the text decodes back to
    /// an equal snapshot.
    ///
    /// # Errors
    /// Fails if the round-trip check does — i.e. the snapshot holds a
    /// value the codec cannot carry losslessly.
    pub fn to_json_pretty(&self) -> Result<String, JsonError> {
        let text = self.to_value().to_json_pretty();
        let back = MetricsSnapshot::from_json(&text)?;
        if self.roundtrip_eq(&back) {
            Ok(text)
        } else {
            Err(JsonError::new("metrics snapshot did not survive a JSON round-trip"))
        }
    }

    /// Round-trip equality: like `==`, but gauges compare bitwise so a NaN
    /// gauge that decodes back to NaN still counts as faithful.
    fn roundtrip_eq(&self, other: &MetricsSnapshot) -> bool {
        self.counters == other.counters
            && self.histograms == other.histograms
            && self.gauges.len() == other.gauges.len()
            && self.gauges.iter().zip(other.gauges.iter()).all(|((ka, va), (kb, vb))| {
                ka == kb && (va.to_bits() == vb.to_bits() || (va.is_nan() && vb.is_nan()))
            })
    }

    /// Decode a snapshot from JSON produced by [`MetricsSnapshot::to_json`]
    /// or [`MetricsSnapshot::to_json_pretty`].
    ///
    /// # Errors
    /// Fails on malformed JSON or a shape mismatch.
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, JsonError> {
        let v = json::parse(text)?;
        let counters = v["counters"]
            .as_object()
            .ok_or_else(|| JsonError::new("counters is not an object"))?
            .iter()
            .map(|(k, x)| {
                x.as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| JsonError::new("counter value is not a u64"))
            })
            .collect::<Result<BTreeMap<_, _>, _>>()?;
        let gauges = v["gauges"]
            .as_object()
            .ok_or_else(|| JsonError::new("gauges is not an object"))?
            .iter()
            .map(|(k, x)| value_to_gauge(x).map(|g| (k.clone(), g)))
            .collect::<Result<BTreeMap<_, _>, _>>()?;
        let histograms = v["histograms"]
            .as_object()
            .ok_or_else(|| JsonError::new("histograms is not an object"))?
            .iter()
            .map(|(k, x)| HistogramSnapshot::from_value(x).map(|h| (k.clone(), h)))
            .collect::<Result<BTreeMap<_, _>, _>>()?;
        Ok(MetricsSnapshot { counters, gauges, histograms })
    }
}

/// A thread-safe registry of named metrics. Handles are `Arc`s: look one up
/// once (e.g. into a `OnceLock` local to the instrumented module) and
/// mutate it lock-free afterwards.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Get or create the counter with this name.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Get or create the gauge with this name.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().get(name) {
            return Arc::clone(g);
        }
        Arc::clone(
            self.gauges.write().entry(name.to_string()).or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// Get or create the histogram with this name. The bounds apply only on
    /// first registration; later callers receive the existing histogram.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Snapshot every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self.counters.read().iter().map(|(k, v)| (k.clone(), v.get())).collect();
        let gauges = self.gauges.read().iter().map(|(k, v)| (k.clone(), v.get())).collect();
        let histograms = self
            .histograms
            .read()
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    HistogramSnapshot {
                        count: h.count(),
                        sum: h.sum(),
                        bounds: h.bounds().to_vec(),
                        counts: h.bucket_counts(),
                    },
                )
            })
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }

    /// Snapshot as pretty-printed JSON, round-trip verified.
    ///
    /// # Errors
    /// Fails if the encoded text does not decode back to an equal
    /// snapshot. Callers (the CLI, `reproduce`) surface this instead of
    /// writing a broken snapshot file.
    pub fn to_json_pretty(&self) -> Result<String, JsonError> {
        self.snapshot().to_json_pretty()
    }

    /// Render the registry in the Prometheus text exposition format.
    /// Labelled series (`base{k="v"}` names) are grouped under their base
    /// name; histograms expand to cumulative `_bucket`/`_sum`/`_count`.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let mut last_type: Option<String> = None;
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let base = name.split('{').next().unwrap_or(name).to_string();
            if last_type.as_deref() != Some(base.as_str()) {
                let _ = writeln!(out, "# TYPE {base} {kind}");
                last_type = Some(base);
            }
        };

        for (name, c) in self.counters.read().iter() {
            type_line(&mut out, name, "counter");
            let _ = writeln!(out, "{name} {}", c.get());
        }
        for (name, g) in self.gauges.read().iter() {
            type_line(&mut out, name, "gauge");
            let _ = writeln!(out, "{name} {}", g.get());
        }
        for (name, h) in self.histograms.read().iter() {
            type_line(&mut out, name, "histogram");
            let (base, labels) = match name.find('{') {
                Some(i) => (&name[..i], name[i + 1..name.len() - 1].to_string()),
                None => (&name[..], String::new()),
            };
            let with_le = |le: &str| {
                if labels.is_empty() {
                    format!("{base}_bucket{{le=\"{le}\"}}")
                } else {
                    format!("{base}_bucket{{{labels},le=\"{le}\"}}")
                }
            };
            let mut cum = 0u64;
            let counts = h.bucket_counts();
            for (i, &b) in h.bounds().iter().enumerate() {
                cum += counts[i];
                let _ = writeln!(out, "{} {cum}", with_le(&format!("{b}")));
            }
            cum += counts[h.bounds().len()];
            let _ = writeln!(out, "{} {cum}", with_le("+Inf"));
            let suffix = if labels.is_empty() { String::new() } else { format!("{{{labels}}}") };
            let _ = writeln!(out, "{base}_sum{suffix} {}", h.sum());
            let _ = writeln!(out, "{base}_count{suffix} {}", h.count());
        }
        out
    }

    /// Remove every metric (test isolation).
    pub fn reset(&self) {
        self.counters.write().clear();
        self.gauges.write().clear();
        self.histograms.write().clear();
    }
}

/// The process-global registry all workspace instrumentation records into.
pub fn global() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c_total");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("c_total").get(), 5, "same name, same counter");
        let g = reg.gauge("g");
        g.set(2.5);
        g.set_max(1.0);
        assert_eq!(g.get(), 2.5);
        g.set_max(7.0);
        assert_eq!(reg.gauge("g").get(), 7.0);
    }

    #[test]
    fn concurrent_counter_increments_from_rayon_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("parallel_total");
        let h = reg.histogram("parallel_hist", &[0.5]);
        rayon::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                s.spawn(move |_| {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.observe((i % 2) as f64);
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
        assert_eq!(h.count(), 80_000);
        assert_eq!(h.bucket_counts(), vec![40_000, 40_000]);
        assert!((h.sum() - 40_000.0).abs() < 1e-6);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper_edges() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.0, 0.5, 1.0] {
            h.observe(v); // first bucket: v <= 1.0
        }
        h.observe(1.0000001); // second bucket
        h.observe(10.0); // still second (inclusive upper edge)
        h.observe(99.0); // third
        h.observe(100.0); // third (inclusive)
        h.observe(1e9); // overflow
        assert_eq!(h.bucket_counts(), vec![3, 2, 2, 1]);
        assert_eq!(h.count(), 8);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_bounds_rejected() {
        Histogram::new(&[1.0, 0.5]);
    }

    #[test]
    fn exponential_buckets_grow_geometrically() {
        let b = exponential_buckets(1e-6, 4.0, 5);
        assert_eq!(b.len(), 5);
        assert!((b[4] / b[3] - 4.0).abs() < 1e-12);
        assert!((b[0] - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn labeled_formats_flat_series_names() {
        assert_eq!(labeled("m_total", &[]), "m_total");
        assert_eq!(labeled("m_total", &[("algo", "SB")]), "m_total{algo=\"SB\"}");
        assert_eq!(labeled("m", &[("a", "1"), ("b", "2")]), "m{a=\"1\",b=\"2\"}");
    }

    #[test]
    fn labeled_escapes_prometheus_special_characters() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        assert_eq!(
            labeled("m_total", &[("query", "SELECT \"x\"\nFROM t\\u")]),
            "m_total{query=\"SELECT \\\"x\\\"\\nFROM t\\\\u\"}"
        );
    }

    #[test]
    fn render_prometheus_escapes_quoted_query_names() {
        let reg = MetricsRegistry::new();
        // A query name containing quotes, a backslash and a newline must
        // render as a single well-formed exposition line.
        let series = labeled("rqp_query_runs_total", &[("query", "Q\"91\"\\odd\nname")]);
        reg.counter(&series).add(2);
        let text = reg.render_prometheus();
        let line = text
            .lines()
            .find(|l| l.starts_with("rqp_query_runs_total{"))
            .expect("labelled counter line");
        assert_eq!(line, "rqp_query_runs_total{query=\"Q\\\"91\\\"\\\\odd\\nname\"} 2");
        // No raw (unescaped) newline may survive inside a label value: every
        // exposition line must start with a metric name or '#'.
        for l in text.lines() {
            assert!(
                l.starts_with('#') || l.starts_with("rqp_query_runs_total"),
                "unexpected continuation line {l:?}"
            );
        }
    }

    #[test]
    fn snapshot_serializes_and_deserializes() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total").add(3);
        reg.gauge("b").set(1.25);
        reg.histogram("h", &[1.0, 2.0]).observe(1.5);
        let snap = reg.snapshot();
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.counters["a_total"], 3);
        assert_eq!(back.histograms["h"].counts, vec![0, 1, 0]);
        // the pretty form is round-trip verified and decodes identically
        let pretty = reg.to_json_pretty().unwrap();
        assert_eq!(MetricsSnapshot::from_json(&pretty).unwrap(), snap);
    }

    #[test]
    fn non_finite_gauges_survive_snapshot_json() {
        let reg = MetricsRegistry::new();
        reg.gauge("mso").set(f64::INFINITY);
        reg.gauge("aso").set(f64::NEG_INFINITY);
        reg.gauge("nan").set(f64::NAN);
        let text = reg.to_json_pretty().unwrap();
        let back = MetricsSnapshot::from_json(&text).unwrap();
        assert_eq!(back.gauges["mso"], f64::INFINITY);
        assert_eq!(back.gauges["aso"], f64::NEG_INFINITY);
        assert!(back.gauges["nan"].is_nan());
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_typed() {
        let reg = MetricsRegistry::new();
        reg.counter("c_total").add(2);
        reg.gauge("g").set(0.5);
        let h = reg.histogram("lat{algo=\"SB\"}", &[1.0, 2.0]);
        h.observe(0.5);
        h.observe(1.5);
        h.observe(9.0);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE c_total counter"));
        assert!(text.contains("c_total 2"));
        assert!(text.contains("# TYPE g gauge"));
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains("lat_bucket{algo=\"SB\",le=\"1\"} 1"));
        assert!(text.contains("lat_bucket{algo=\"SB\",le=\"2\"} 2"));
        assert!(text.contains("lat_bucket{algo=\"SB\",le=\"+Inf\"} 3"));
        assert!(text.contains("lat_count{algo=\"SB\"} 3"));
    }

    #[test]
    fn reset_clears_everything() {
        let reg = MetricsRegistry::new();
        reg.counter("x").inc();
        reg.reset();
        assert_eq!(reg.snapshot().counters.len(), 0);
        assert_eq!(reg.counter("x").get(), 0);
    }
}
