//! RAII timing spans feeding histograms.

use crate::metrics::{exponential_buckets, Histogram};
use std::sync::Arc;
use std::time::Instant;

/// Default latency bucket bounds: 1µs to ~268ms in ×4 steps (14 buckets
/// plus the implicit overflow bucket). Wide enough to span a single plan
/// costing up to a full ESS compile band.
pub fn default_latency_buckets() -> Vec<f64> {
    exponential_buckets(1e-6, 4.0, 14)
}

/// Bucket bounds for compile-scale latencies: 1ms to ~1049s in ×4 steps
/// (11 buckets plus the implicit overflow bucket). [`default_latency_buckets`]
/// tops out near 268ms, so cold 4D+ ESS compiles — multi-second in
/// BENCH_4.json — would otherwise land entirely in the overflow bucket;
/// use these at compile and serve-session registration sites.
pub fn default_compile_buckets() -> Vec<f64> {
    exponential_buckets(1e-3, 4.0, 11)
}

/// A plain elapsed-time stopwatch with no metric attached. This is the
/// sanctioned timing primitive for the deterministic crates (rqp-lint L4
/// forbids `std::time` there): per-cell compile attribution accumulates
/// `Stopwatch` readings into atomics and reports them as aggregate spans.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start the stopwatch now.
    pub fn start() -> Self {
        Stopwatch { start: Instant::now() }
    }

    /// Elapsed nanoseconds since start (saturating at `u64::MAX`).
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Elapsed seconds since start.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// An RAII timing span. On drop it observes the elapsed wall-clock seconds
/// into its histogram. Create one with [`time_histogram`] or
/// [`Timer::new`]; use [`Timer::stop`] to end it early and read the
/// elapsed time.
#[derive(Debug)]
pub struct Timer {
    hist: Option<Arc<Histogram>>,
    start: Instant,
}

impl Timer {
    /// Start a span that reports into `hist` when dropped.
    pub fn new(hist: Arc<Histogram>) -> Self {
        Timer { hist: Some(hist), start: Instant::now() }
    }

    /// Elapsed seconds so far, without ending the span.
    pub fn elapsed(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// End the span now, record the observation, and return the elapsed
    /// seconds.
    pub fn stop(mut self) -> f64 {
        let secs = self.elapsed();
        if let Some(h) = self.hist.take() {
            h.observe(secs);
        }
        secs
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some(h) = self.hist.take() {
            h.observe(self.start.elapsed().as_secs_f64());
        }
    }
}

/// Start a [`Timer`] against a histogram handle.
pub fn time_histogram(hist: &Arc<Histogram>) -> Timer {
    Timer::new(Arc::clone(hist))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn timer_records_on_drop() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("span_seconds", &default_latency_buckets());
        {
            let _t = time_histogram(&h);
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 0.0);
    }

    #[test]
    fn compile_buckets_cover_cold_multi_second_compiles() {
        let b = default_compile_buckets();
        let top = b.last().copied().unwrap_or(0.0);
        assert!(top >= 1000.0, "compile buckets must reach ~1000s, got {top}");
        assert!(b[0] <= 1e-3);
        // The latency buckets top out far below the compile buckets.
        let lat_top = default_latency_buckets().last().copied().unwrap_or(0.0);
        assert!(
            lat_top < top / 10.0,
            "latency ceiling {lat_top} too close to compile ceiling {top}"
        );
    }

    #[test]
    fn stopwatch_reads_monotonically() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_nanos();
        let b = sw.elapsed_nanos();
        assert!(b >= a);
        assert!(sw.elapsed_secs() >= 0.0);
    }

    #[test]
    fn stop_records_exactly_once() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("span_seconds", &default_latency_buckets());
        let t = time_histogram(&h);
        let secs = t.stop();
        assert!(secs >= 0.0);
        assert_eq!(h.count(), 1, "stop() consumed the timer; drop adds nothing");
    }
}
