//! Trace exporters: Chrome trace-event JSON (Perfetto-loadable) and
//! folded-stack flamegraph text.
//!
//! Both exporters are pure functions over [`SpanRecord`]s and build their
//! output through the self-contained [`crate::json`] codec, so exported
//! traces round-trip through [`crate::json::parse`] — the trace-smoke
//! check in CI relies on that.

use crate::json::{JsonValue, Map};
use crate::trace::SpanRecord;

/// Build a Chrome trace-event document (the `{"traceEvents": [...]}` form)
/// from completed spans. Each span becomes a complete (`"ph":"X"`) event;
/// timestamps and durations are microseconds relative to the trace epoch;
/// each span's `lane` becomes the `tid`, giving one display lane per
/// worker/session in Perfetto.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> JsonValue {
    let mut events = Vec::with_capacity(spans.len());
    for s in spans {
        let mut args = Map::new();
        args.insert("trace_id".to_owned(), JsonValue::from(s.trace_id));
        args.insert("span_id".to_owned(), JsonValue::from(s.span_id));
        match s.parent_id {
            Some(p) => args.insert("parent_id".to_owned(), JsonValue::from(p)),
            None => args.insert("parent_id".to_owned(), JsonValue::Null),
        };
        for (k, v) in &s.attrs {
            args.insert((*k).to_owned(), v.clone());
        }
        let mut ev = Map::new();
        ev.insert("name".to_owned(), JsonValue::Str(s.name.to_owned()));
        ev.insert("cat".to_owned(), JsonValue::Str(s.kind.as_str().to_owned()));
        ev.insert("ph".to_owned(), JsonValue::Str("X".to_owned()));
        ev.insert("ts".to_owned(), JsonValue::Num(s.start * 1e6));
        ev.insert("dur".to_owned(), JsonValue::Num(s.duration * 1e6));
        ev.insert("pid".to_owned(), JsonValue::Int(1));
        ev.insert("tid".to_owned(), JsonValue::from(s.lane));
        ev.insert("args".to_owned(), JsonValue::Object(args));
        events.push(JsonValue::Object(ev));
    }
    let mut doc = Map::new();
    doc.insert("traceEvents".to_owned(), JsonValue::Array(events));
    doc.insert("displayTimeUnit".to_owned(), JsonValue::Str("ms".to_owned()));
    JsonValue::Object(doc)
}

/// Merge spans from several traces (e.g. one per session) into a single
/// Chrome trace document; lanes keep the events visually separated.
pub fn chrome_trace_json_multi(traces: &[Vec<SpanRecord>]) -> JsonValue {
    let all: Vec<SpanRecord> = traces.iter().flat_map(|t| t.iter().cloned()).collect();
    chrome_trace_json(&all)
}

/// Render spans as folded stacks (`frame;frame;frame <self-µs>` per line),
/// the input format of flamegraph tooling. Self time is a span's duration
/// minus the summed durations of its direct children, clamped at zero;
/// values are integer microseconds. Lines are emitted in deterministic
/// (stack-lexicographic) order.
pub fn folded_stacks(spans: &[SpanRecord]) -> String {
    let mut lines: Vec<String> = Vec::new();
    for s in spans {
        let children_secs: f64 = spans
            .iter()
            .filter(|c| c.trace_id == s.trace_id && c.parent_id == Some(s.span_id))
            .map(|c| c.duration)
            .sum();
        let self_micros = ((s.duration - children_secs).max(0.0) * 1e6).round() as u64;
        // Walk ancestors to the root to build the stack.
        let mut stack = vec![s.name];
        let mut cursor = s.parent_id;
        while let Some(pid) = cursor {
            match spans.iter().find(|p| p.trace_id == s.trace_id && p.span_id == pid) {
                Some(p) => {
                    stack.push(p.name);
                    cursor = p.parent_id;
                }
                None => break,
            }
        }
        stack.reverse();
        lines.push(format!("{} {}", stack.join(";"), self_micros));
    }
    lines.sort();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanKind, Tracer};

    fn sample_spans() -> Vec<SpanRecord> {
        let t = Tracer::new(77, 3);
        {
            let mut root = t.span("session", SpanKind::Session);
            root.attr("query", "2D_Q91");
            {
                let _c = t.span("compile", SpanKind::Compile);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let _e = t.span("exec", SpanKind::Execution);
        }
        t.spans()
    }

    #[test]
    fn chrome_trace_round_trips_through_codec() {
        let spans = sample_spans();
        let doc = chrome_trace_json(&spans);
        let text = doc.to_json_pretty();
        let parsed = crate::json::parse(&text).expect("exporter output must reparse");
        let JsonValue::Object(obj) = &parsed else { panic!("expected object") };
        let JsonValue::Array(events) = &obj["traceEvents"] else { panic!("expected array") };
        assert_eq!(events.len(), spans.len());
        let JsonValue::Object(first) = &events[0] else { panic!("expected object event") };
        assert_eq!(first["ph"], JsonValue::Str("X".to_owned()));
        assert_eq!(first["pid"], JsonValue::Int(1));
        assert_eq!(first["tid"], JsonValue::Int(3));
        let JsonValue::Object(args) = &first["args"] else { panic!("expected args object") };
        assert_eq!(args["trace_id"], JsonValue::Int(77));
    }

    #[test]
    fn folded_stacks_walks_parent_chains() {
        let spans = sample_spans();
        let folded = folded_stacks(&spans);
        assert!(folded.contains("session;compile "), "missing nested stack in: {folded}");
        assert!(folded.contains("session;exec "), "missing nested stack in: {folded}");
        // Root line carries self time only (children subtracted).
        let root_line =
            folded.lines().find(|l| l.starts_with("session ")).expect("root stack line");
        let self_us: u64 = root_line.rsplit(' ').next().expect("count").parse().expect("number");
        let compile = spans.iter().find(|s| s.name == "compile").expect("compile span");
        assert!((self_us as f64) < compile.duration * 1e6 + 1.0 || self_us == 0);
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        assert_eq!(folded_stacks(&[]), "");
        let doc = chrome_trace_json(&[]);
        let text = doc.to_json_pretty();
        assert!(crate::json::parse(&text).is_ok());
    }
}
