#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! Observability for robust-qp: metrics, timing spans and a structured
//! event stream.
//!
//! The paper's own prototype leans on run-time monitoring — operator
//! selectivity observation and budgeted-execution accounting (§6.1) — and
//! flags ESS compilation ("repeated calls to the optimizer") as the
//! dominant overhead (§7). This crate provides the system-wide telemetry
//! layer the rest of the workspace records into:
//!
//! * a thread-safe [`MetricsRegistry`] of named [`Counter`]s, [`Gauge`]s
//!   and fixed-bucket [`Histogram`]s, with JSON and Prometheus-text
//!   exports ([`MetricsRegistry::snapshot`],
//!   [`MetricsRegistry::render_prometheus`]);
//! * lightweight RAII timing spans ([`Timer`]) feeding histograms;
//! * a pluggable structured [`EventSink`] (JSONL via [`JsonlSink`], or
//!   in-memory via [`MemorySink`]) behind a process-global switch. The
//!   default sink is *none*: [`events_enabled`] is a single relaxed atomic
//!   load, so instrumented code costs approximately nothing when
//!   observability is off.
//!
//! Metric mutation (counter increments, histogram observations) is always
//! on — individual operations are single relaxed atomics, negligible next
//! to the optimizer invocations and plan costings they account for.
//!
//! All metric names used across the workspace are centralized in
//! [`names`] so producers and consumers cannot drift apart.

pub mod event;
pub mod json;
pub mod metrics;
pub mod names;
pub mod span;

pub use event::{
    clear_sink, emit, events_enabled, flush_sink, set_sink, Event, EventSink, JsonlSink, MemorySink,
};
pub use json::{JsonError, JsonValue};
pub use metrics::{
    exponential_buckets, global, labeled, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricsRegistry, MetricsSnapshot,
};
pub use span::{default_latency_buckets, time_histogram, Timer};
