#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! Observability for robust-qp: metrics, timing spans and a structured
//! event stream.
//!
//! The paper's own prototype leans on run-time monitoring — operator
//! selectivity observation and budgeted-execution accounting (§6.1) — and
//! flags ESS compilation ("repeated calls to the optimizer") as the
//! dominant overhead (§7). This crate provides the system-wide telemetry
//! layer the rest of the workspace records into:
//!
//! * a thread-safe [`MetricsRegistry`] of named [`Counter`]s, [`Gauge`]s
//!   and fixed-bucket [`Histogram`]s, with JSON and Prometheus-text
//!   exports ([`MetricsRegistry::snapshot`],
//!   [`MetricsRegistry::render_prometheus`]);
//! * lightweight RAII timing spans ([`Timer`]) feeding histograms;
//! * hierarchical causal tracing ([`trace::Tracer`]) with deterministic
//!   span ids, thread-local propagation ([`trace::install`] /
//!   [`trace::current`]) and two exporters: Chrome trace-event JSON
//!   ([`chrome_trace_json`]) and folded flamegraph stacks
//!   ([`folded_stacks`]);
//! * a pluggable structured [`EventSink`] (JSONL via [`JsonlSink`], or
//!   in-memory via [`MemorySink`]) behind a process-global switch. The
//!   default sink is *none*: [`events_enabled`] is a single relaxed atomic
//!   load, so instrumented code costs approximately nothing when
//!   observability is off.
//!
//! Metric mutation (counter increments, histogram observations) is always
//! on — individual operations are single relaxed atomics, negligible next
//! to the optimizer invocations and plan costings they account for.
//!
//! All metric names used across the workspace are centralized in
//! [`names`] so producers and consumers cannot drift apart.

pub mod deadline;
pub mod event;
pub mod export;
pub mod json;
pub mod metrics;
pub mod names;
pub mod span;
pub mod trace;

pub use deadline::Deadline;
pub use event::{
    clear_sink, emit, events_enabled, flush_sink, set_sink, Event, EventSink, JsonlSink, MemorySink,
};
pub use export::{chrome_trace_json, chrome_trace_json_multi, folded_stacks};
pub use json::{JsonError, JsonValue};
pub use metrics::{
    escape_label_value, exponential_buckets, global, labeled, Counter, Gauge, Histogram,
    HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use span::{
    default_compile_buckets, default_latency_buckets, time_histogram, Stopwatch, Timer,
};
pub use trace::{
    current, install, structural_render, SpanGuard, SpanKind, SpanRecord, TraceScope, Tracer,
};
