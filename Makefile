# Convenience targets for the robust-qp workspace.

.PHONY: verify build test clippy lint bench reproduce chaos

# The full pre-merge gate: release build, quiet tests, zero clippy
# warnings, a clean rqp-lint pass, and the fixed-seed chaos smoke sweep.
verify:
	cargo build --release && cargo test -q && cargo clippy --workspace -- -D warnings && cargo run -q -p rqp-lint && $(MAKE) chaos

# Fixed-seed fault-injection smoke sweep: every discovery algorithm must
# terminate with honest accounting under each fault class (see README,
# "Fault injection & chaos testing").
chaos:
	cargo run --release --bin rqp -- chaos --query 2D_Q91 --resolution 6 --seed 1 --schedules 2

# Workspace invariant linter (see README, "Static analysis").
lint:
	cargo run -q -p rqp-lint

build:
	cargo build --workspace --release

test:
	cargo test --workspace

clippy:
	cargo clippy --workspace -- -D warnings

bench:
	cargo bench --workspace

reproduce:
	cargo run --release -p rqp-bench --bin reproduce
