# Convenience targets for the robust-qp workspace.

.PHONY: verify build test clippy lint bench reproduce

# The full pre-merge gate: release build, quiet tests, zero clippy
# warnings, and a clean rqp-lint pass.
verify:
	cargo build --release && cargo test -q && cargo clippy --workspace -- -D warnings && cargo run -q -p rqp-lint

# Workspace invariant linter (see README, "Static analysis").
lint:
	cargo run -q -p rqp-lint

build:
	cargo build --workspace --release

test:
	cargo test --workspace

clippy:
	cargo clippy --workspace -- -D warnings

bench:
	cargo bench --workspace

reproduce:
	cargo run --release -p rqp-bench --bin reproduce
