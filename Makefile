# Convenience targets for the robust-qp workspace.

.PHONY: verify build test clippy lint lint-graph bench bench-compile bench-trace bench-lazy cache-smoke serve-smoke serve-remote-smoke trace-smoke reproduce chaos drill

# The full pre-merge gate: release build, quiet tests, zero clippy
# warnings, a clean rqp-lint pass (warnings denied), an acyclic lock
# graph, the fixed-seed chaos smoke sweep, the causal-trace smoke, and
# the scripted resilience drills.
verify:
	cargo build --release && cargo test -q && cargo clippy --workspace -- -D warnings && $(MAKE) lint && $(MAKE) lint-graph && $(MAKE) chaos && $(MAKE) trace-smoke && $(MAKE) drill

# Resilience drills (see README, "Resilience"): crash-recovery must
# restore every fingerprint from the disk tier with zero recompiles, and
# the seeded chaos storm must hold the deadline and breaker-consistency
# bounds over >= 100 sessions. Both exit non-zero on any violation.
drill:
	rm -rf target/drill-cache
	cargo run --release --bin rqp -- serve --drill crash-recover --cache-dir target/drill-cache
	cargo run --release --bin rqp -- serve --drill storm --chaos-seed 3 --sessions 120
	@echo "drill: ok"

# Fixed-seed fault-injection smoke sweep: every discovery algorithm must
# terminate with honest accounting under each fault class (see README,
# "Fault injection & chaos testing").
chaos:
	cargo run --release --bin rqp -- chaos --query 2D_Q91 --resolution 6 --seed 1 --schedules 2

# Workspace invariant linter (see README, "Static analysis"). Warnings
# (raii-span) are promoted to denials at the pre-merge gate.
lint:
	cargo run -q -p rqp-lint -- --deny-warnings

# Lock acquisition graph of the serving tier as GraphViz DOT. Fails
# (exit 1) if any acquisition-order cycle exists.
lint-graph:
	@mkdir -p target
	cargo run -q -p rqp-lint -- --lock-graph crates/serve --dot target/lock-graph.dot

build:
	cargo build --workspace --release

test:
	cargo test --workspace

clippy:
	cargo clippy --workspace -- -D warnings

# Full criterion sweep. The compile_cache bench records the POSP compile
# acceleration trajectory (exact vs recost vs warm cache on the 3D coarse
# fixture) in BENCH_4.json at the repo root.
bench:
	cargo bench --workspace
	@test -f BENCH_4.json && echo "compile perf trajectory: BENCH_4.json" || true

# Just the compile-acceleration benchmark (fast; CI smoke).
bench-compile:
	cargo bench -p rqp-bench --bench compile_cache

# Tracing-overhead benchmark; records the ≤5% acceptance measure in
# BENCH_6.json at the repo root.
bench-trace:
	cargo bench -p rqp-bench --bench trace_overhead

# Lazy anytime compile benchmark; records the cold compile-to-first-
# execution speedup (4D fixture, eager full compile vs anchor begin +
# first contour band) in BENCH_7.json at the repo root.
bench-lazy:
	cargo bench -p rqp-bench --bench compile_lazy

# Persistent-cache smoke: the second identical compile must be a disk hit.
cache-smoke:
	rm -rf target/cache-smoke
	cargo run --release --bin rqp -- compile --query 2D_Q91 --resolution 6 --cache-dir target/cache-smoke
	cargo run --release --bin rqp -- compile --query 2D_Q91 --resolution 6 --cache-dir target/cache-smoke \
		| grep -q "compile cache: 1 hit(s)"
	@echo "cache-smoke: ok"

# Concurrent-serving smoke: 16 sessions over 2 fingerprints through the
# shared registry under a quiet chaos schedule. --strict fails on any
# rejected/failed session, a non-finite suboptimality, or a compile count
# different from the distinct fingerprint count.
serve-smoke:
	cargo run --release --bin rqp -- serve --workload examples/serve_smoke.workload \
		--workers 8 --queue 16 --chaos-seed 1 --strict true
	@echo "serve-smoke: ok"

# Remote-serving smoke: the same workload served (a) in-process and
# (b) by a persistent-session TCP client against a 2-shard deployment
# must produce byte-identical stable reports. Shards bind port 0 and
# publish their address via --addr-file; the client shuts the
# deployment down over the wire when done.
serve-remote-smoke:
	cargo build --release --bin rqp
	rm -rf target/remote-smoke && mkdir -p target/remote-smoke
	target/release/rqp serve --workload examples/remote_smoke.workload \
		--resolution 6 --stable-out target/remote-smoke/local.txt
	target/release/rqp serve --listen 127.0.0.1:0 --shard 0/2 --resolution 6 \
		--addr-file target/remote-smoke/shard0.addr & \
	target/release/rqp serve --listen 127.0.0.1:0 --shard 1/2 --resolution 6 \
		--addr-file target/remote-smoke/shard1.addr & \
	for i in $$(seq 1 100); do \
		[ -f target/remote-smoke/shard0.addr ] && [ -f target/remote-smoke/shard1.addr ] && break; \
		sleep 0.2; \
	done; \
	ADDRS="$$(cat target/remote-smoke/shard0.addr),$$(cat target/remote-smoke/shard1.addr)"; \
	target/release/rqp connect --addr "$$ADDRS" \
		--workload examples/remote_smoke.workload \
		--resolution 6 --stable-out target/remote-smoke/remote.txt && \
	target/release/rqp connect --addr "$$ADDRS" --shutdown true && \
	wait
	cmp target/remote-smoke/local.txt target/remote-smoke/remote.txt
	@echo "serve-remote-smoke: ok (stable reports byte-identical)"

# Causal-tracing smoke: a traced serve run must export a Chrome trace
# that reparses through the obs JSON codec and carries at least one
# single-flight compile span and one wait-on-peer span (`rqp trace-check`
# validates both). The folded-stack export must name the compile path.
trace-smoke:
	cargo run --release --bin rqp -- serve --workload examples/serve_smoke.workload \
		--workers 8 --queue 16 --strict true \
		--trace-out target/trace-smoke.json --flame-out target/trace-smoke.folded
	cargo run --release --bin rqp -- trace-check --file target/trace-smoke.json
	grep -q "session;ess_compile" target/trace-smoke.folded
	@echo "trace-smoke: ok"

reproduce:
	cargo run --release -p rqp-bench --bin reproduce
