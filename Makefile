# Convenience targets for the robust-qp workspace.

.PHONY: verify build test clippy bench reproduce

# The full pre-merge gate: release build, quiet tests, zero clippy warnings.
verify:
	cargo build --release && cargo test -q && cargo clippy --workspace -- -D warnings

build:
	cargo build --workspace --release

test:
	cargo test --workspace

clippy:
	cargo clippy --workspace -- -D warnings

bench:
	cargo bench --workspace

reproduce:
	cargo run --release -p rqp-bench --bin reproduce
